// Package flush implements the FLUSH layer of Table 3: it upgrades the
// virtually *semi*-synchronous delivery of a BMS layer below it
// (property P8) to full virtual synchrony (P9) by redistributing
// unstable messages during view changes. BMS+FLUSH decomposes the
// monolithic MBRSHIP layer, which is exactly the modularity §11 of the
// paper advertises ("in the past, our work on Isis was clouded by an
// architecture in which protocols for group communication were mixed
// with protocols for membership agreement").
//
// Operation: the layer stamps and logs every multicast it delivers.
// When BMS reports a flush (the FLUSH upcall), every member multicasts
// its unstable log to the surviving members, follows it with a DONE
// marker, and sends the flush_ok downcall only after collecting DONE
// from every survivor. FIFO channels below guarantee that a member's
// forwarded messages precede its DONE, so when everyone has consented,
// everyone has everything — and BMS may install the view.
//
// If a stability layer sits below (property P14), STABLE upcalls trim
// the log so only genuinely unstable messages are redistributed.
//
// Properties: requires P3, P4, P8, P10, P11, P12, P14, P15;
// provides P9.
package flush

import (
	"fmt"
	"sort"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/wire"
)

// Wire kinds.
const (
	kData = 1 // stamped multicast {seq}
	kSend = 2 // subset send pass-through
	kFwd  = 3 // unstable redistribution {origin, seq, wire}
	kDone = 4 // this member's redistribution is complete {gen}
)

type logEntry struct {
	seq uint64
	msg *message.Message
}

// Flush is one FLUSH layer instance.
type Flush struct {
	core.Base

	view    *core.View
	sendSeq uint64

	prefix map[core.EndpointID]uint64 // contiguous delivered per origin
	sparse map[core.MsgID]bool        // deliveries beyond the prefix
	log    map[core.EndpointID][]logEntry

	flushing  bool
	gen       uint64 // flush generation within this view
	failed    map[core.EndpointID]bool
	doneFrom  map[core.EndpointID]uint64 // highest DONE generation per member
	consented bool

	stats Stats
}

// Stats counts FLUSH activity.
type Stats struct {
	FwdsSent      int
	FwdsDelivered int
	Flushes       int
}

// New returns a FLUSH layer.
func New() core.Layer { return &Flush{} }

// Name implements core.Layer.
func (f *Flush) Name() string { return "FLUSH" }

// Stats returns a snapshot of the layer's counters.
func (f *Flush) Stats() Stats { return f.stats }

// Init implements core.Layer.
func (f *Flush) Init(c *core.Context) error {
	if err := f.Base.Init(c); err != nil {
		return err
	}
	f.prefix = make(map[core.EndpointID]uint64)
	f.sparse = make(map[core.MsgID]bool)
	f.log = make(map[core.EndpointID][]logEntry)
	f.failed = make(map[core.EndpointID]bool)
	f.doneFrom = make(map[core.EndpointID]uint64)
	return nil
}

// Down implements core.Layer.
func (f *Flush) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		f.sendSeq++
		ev.Msg.PushUint64(f.sendSeq)
		ev.Msg.PushUint8(kData)
		f.Ctx.Down(ev)
	case core.DSend:
		ev.Msg.PushUint8(kSend)
		f.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("FLUSH: logged=%d flushes=%d fwds=%d",
			f.logSize(), f.stats.Flushes, f.stats.FwdsSent))
		f.Ctx.Down(ev)
	default:
		f.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (f *Flush) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		kind := ev.Msg.PopUint8()
		switch kind {
		case kData:
			f.receiveData(ev)
		}
	case core.USend:
		kind := ev.Msg.PopUint8()
		switch kind {
		case kSend:
			f.Ctx.Up(ev)
		case kFwd:
			f.receiveFwd(ev)
		case kDone:
			f.receiveDone(ev)
		}
	case core.UFlush:
		f.startFlush(ev)
		f.Ctx.Up(ev)
	case core.UView:
		f.applyView(ev.View)
		f.Ctx.Up(ev)
	case core.UStable:
		f.trim(ev.Stability)
		f.Ctx.Up(ev)
	default:
		f.Ctx.Up(ev)
	}
}

// receiveData delivers a stamped multicast once.
func (f *Flush) receiveData(ev *core.Event) {
	seq := ev.Msg.PopUint64()
	if f.delivered(ev.Source, seq) {
		return
	}
	f.record(ev.Source, seq)
	f.log[ev.Source] = append(f.log[ev.Source], logEntry{seq: seq, msg: ev.Msg.Clone()})
	f.Ctx.Up(ev)
}

func (f *Flush) delivered(origin core.EndpointID, seq uint64) bool {
	return seq <= f.prefix[origin] || f.sparse[core.MsgID{Origin: origin, Seq: seq}]
}

func (f *Flush) record(origin core.EndpointID, seq uint64) {
	f.sparse[core.MsgID{Origin: origin, Seq: seq}] = true
	for f.sparse[core.MsgID{Origin: origin, Seq: f.prefix[origin] + 1}] {
		f.prefix[origin]++
		delete(f.sparse, core.MsgID{Origin: origin, Seq: f.prefix[origin]})
	}
}

// startFlush redistributes the unstable log and announces completion.
// Wider failure sets restart the exchange with a higher generation.
func (f *Flush) startFlush(ev *core.Event) {
	f.stats.Flushes++
	f.flushing = true
	f.consented = false
	f.gen++
	for _, e := range ev.Failed {
		f.failed[e] = true
	}
	dests := f.survivorsExceptSelf()
	origins := make([]core.EndpointID, 0, len(f.log))
	for o := range f.log {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i].Older(origins[j]) })
	for _, origin := range origins {
		for _, entry := range f.log[origin] {
			fwd := message.New(entry.msg.Marshal())
			fwd.PushUint64(entry.seq)
			wire.PushEndpointID(fwd, origin)
			fwd.PushUint8(kFwd)
			f.stats.FwdsSent++
			if len(dests) > 0 {
				f.Ctx.Down(&core.Event{Type: core.DSend, Msg: fwd, Dests: dests})
			}
		}
	}
	done := message.New(nil)
	done.PushUint64(f.gen)
	done.PushUint8(kDone)
	if len(dests) > 0 {
		f.Ctx.Down(&core.Event{Type: core.DSend, Msg: done, Dests: dests})
	}
	f.doneFrom[f.Ctx.Self()] = f.gen
	f.checkComplete()
}

// receiveFwd delivers a redistributed message if it is new.
func (f *Flush) receiveFwd(ev *core.Event) {
	origin := wire.PopEndpointID(ev.Msg)
	seq := ev.Msg.PopUint64()
	if f.delivered(origin, seq) {
		return
	}
	inner, err := message.Unmarshal(append([]byte(nil), ev.Msg.Body()...))
	if err != nil {
		return
	}
	f.record(origin, seq)
	f.log[origin] = append(f.log[origin], logEntry{seq: seq, msg: inner.Clone()})
	f.stats.FwdsDelivered++
	f.Ctx.Up(&core.Event{Type: core.UCast, Msg: inner, Source: origin})
}

// receiveDone collects redistribution completions.
func (f *Flush) receiveDone(ev *core.Event) {
	gen := ev.Msg.PopUint64()
	if gen > f.doneFrom[ev.Source] {
		f.doneFrom[ev.Source] = gen
	}
	f.checkComplete()
}

// checkComplete consents to the flush once every survivor's DONE has
// arrived — by FIFO, after every survivor's forwards.
func (f *Flush) checkComplete() {
	if !f.flushing || f.consented || f.view == nil {
		return
	}
	for _, m := range f.view.Members {
		if f.failed[m] {
			continue
		}
		if f.doneFrom[m] == 0 {
			return
		}
	}
	f.consented = true
	f.Ctx.Down(&core.Event{Type: core.DFlushOK})
}

func (f *Flush) survivorsExceptSelf() []core.EndpointID {
	if f.view == nil {
		return nil
	}
	out := make([]core.EndpointID, 0, len(f.view.Members))
	for _, m := range f.view.Members {
		if m != f.Ctx.Self() && !f.failed[m] {
			out = append(out, m)
		}
	}
	return out
}

// trim drops log entries the stability matrix proves fully delivered.
func (f *Flush) trim(m *core.StabilityMatrix) {
	if m == nil {
		return
	}
	for origin, entries := range f.log {
		stable := m.MinStable(origin)
		if stable == 0 {
			continue
		}
		keep := entries[:0]
		for _, e := range entries {
			if e.seq > stable {
				keep = append(keep, e)
			}
		}
		f.log[origin] = keep
	}
}

// applyView resets flush state; message identities are continuous
// across views, so delivery dedup state persists.
func (f *Flush) applyView(v *core.View) {
	f.view = v
	f.flushing = false
	f.consented = false
	f.gen = 0
	f.failed = make(map[core.EndpointID]bool)
	f.doneFrom = make(map[core.EndpointID]uint64)
	f.log = make(map[core.EndpointID][]logEntry)
}

func (f *Flush) logSize() int {
	n := 0
	for _, entries := range f.log {
		n += len(entries)
	}
	return n
}
