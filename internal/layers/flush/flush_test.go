package flush_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/flush"
	"horus/internal/layertest"
	"horus/internal/message"
	"horus/internal/wire"
)

func setup(t *testing.T) (*layertest.Harness, core.EndpointID, core.EndpointID) {
	t.Helper()
	h := layertest.New(t, flush.New)
	p1 := layertest.ID("p1", 2)
	p2 := layertest.ID("p2", 3)
	h.InstallView(h.Self(), p1, p2)
	h.Reset()
	return h, p1, p2
}

// data builds a stamped FLUSH-layer multicast as a peer would send it.
func data(body string, seq uint64) *message.Message {
	m := message.New([]byte(body))
	m.PushUint64(seq)
	m.PushUint8(1) // kData
	return m
}

// fwd builds a redistribution message.
func fwd(origin core.EndpointID, seq uint64, inner *message.Message) *message.Message {
	m := message.New(inner.Marshal())
	m.PushUint64(seq)
	wire.PushEndpointID(m, origin)
	m.PushUint8(3) // kFwd
	return m
}

// done builds a completion marker.
func done(gen uint64) *message.Message {
	m := message.New(nil)
	m.PushUint64(gen)
	m.PushUint8(4) // kDone
	return m
}

func TestStampsAndDeliversOnce(t *testing.T) {
	h, p1, _ := setup(t)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: data("m", 1), Source: p1})
	h.InjectUp(&core.Event{Type: core.UCast, Msg: data("m", 1), Source: p1})
	if got := h.UpOfType(core.UCast); len(got) != 1 {
		t.Fatalf("delivered %d, want 1 (dedup)", len(got))
	}
}

func TestFlushRedistributesLogAndConsentsAfterAllDone(t *testing.T) {
	h, p1, p2 := setup(t)
	// Two deliveries go into the log.
	h.InjectUp(&core.Event{Type: core.UCast, Msg: data("a", 1), Source: p1})
	h.InjectUp(&core.Event{Type: core.UCast, Msg: data("b", 2), Source: p1})

	// BMS reports a flush removing p2.
	h.InjectUp(&core.Event{Type: core.UFlush, Failed: []core.EndpointID{p2}})
	// Our fwds + done went to the survivor p1.
	var fwds, dones int
	for _, ev := range h.DownOfType(core.DSend) {
		kind := ev.Msg.Clone().PopUint8()
		switch kind {
		case 3:
			fwds++
		case 4:
			dones++
		}
		if len(ev.Dests) != 1 || ev.Dests[0] != p1 {
			t.Fatalf("redistribution sent to %v, want [p1]", ev.Dests)
		}
	}
	if fwds != 2 || dones != 1 {
		t.Fatalf("fwds=%d dones=%d, want 2/1", fwds, dones)
	}
	// No consent until p1's done arrives.
	if got := h.DownOfType(core.DFlushOK); len(got) != 0 {
		t.Fatal("consented before every survivor finished")
	}
	h.InjectUp(&core.Event{Type: core.USend, Msg: done(1), Source: p1})
	if got := h.DownOfType(core.DFlushOK); len(got) != 1 {
		t.Fatal("no consent after all survivors done")
	}
}

func TestIncomingFwdDeliversMissingMessage(t *testing.T) {
	h, p1, p2 := setup(t)
	// p1 delivered p2's message that we never saw; during the flush it
	// forwards it to us.
	orig := message.New([]byte("rescued"))
	h.InjectUp(&core.Event{Type: core.UFlush, Failed: nil})
	h.InjectUp(&core.Event{Type: core.USend, Msg: fwd(p2, 1, orig), Source: p1})
	got := h.UpOfType(core.UCast)
	if len(got) != 1 || string(got[0].Msg.Body()) != "rescued" || got[0].Source != p2 {
		t.Fatalf("fwd delivery = %v", got)
	}
	// A duplicate fwd (from another member's redistribution) is dropped.
	h.InjectUp(&core.Event{Type: core.USend, Msg: fwd(p2, 1, orig), Source: p1})
	if got := h.UpOfType(core.UCast); len(got) != 1 {
		t.Fatal("duplicate fwd delivered")
	}
	// And a fwd of something we already delivered directly is dropped.
	h.InjectUp(&core.Event{Type: core.UCast, Msg: data("direct", 2), Source: p2})
	h.InjectUp(&core.Event{Type: core.USend, Msg: fwd(p2, 2, message.New([]byte("direct"))), Source: p1})
	casts := h.UpOfType(core.UCast)
	if len(casts) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(casts))
	}
}

func TestStabilityTrimsLog(t *testing.T) {
	h, p1, p2 := setup(t)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: data("a", 1), Source: p1})
	h.InjectUp(&core.Event{Type: core.UCast, Msg: data("b", 2), Source: p1})
	// Everyone has 1 from p1; 2 is still unstable.
	members := []core.EndpointID{h.Self(), p1, p2}
	m := core.NewStabilityMatrix(members)
	for _, mem := range members {
		m.Set(p1, mem, 1)
	}
	h.InjectUp(&core.Event{Type: core.UStable, Stability: m})
	h.Reset()
	// Flush: only the unstable message (seq 2) is redistributed.
	h.InjectUp(&core.Event{Type: core.UFlush, Failed: nil})
	// One DSend per unstable log entry, addressed to all survivors:
	// exactly the still-unstable seq 2.
	var fwds []*core.Event
	for _, ev := range h.DownOfType(core.DSend) {
		if ev.Msg.Clone().PopUint8() == 3 {
			fwds = append(fwds, ev)
		}
	}
	if len(fwds) != 1 {
		t.Fatalf("fwd sends = %d, want 1 (the stable entry must be trimmed)", len(fwds))
	}
	if len(fwds[0].Dests) != 2 {
		t.Fatalf("fwd destinations = %v, want both survivors", fwds[0].Dests)
	}
}

func TestViewChangeResetsFlushState(t *testing.T) {
	h, p1, _ := setup(t)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: data("x", 1), Source: p1})
	h.InjectUp(&core.Event{Type: core.UFlush, Failed: nil})
	v := core.NewView(core.ViewID{Seq: 2, Coord: h.Self()}, "test",
		[]core.EndpointID{h.Self(), p1})
	h.InjectUp(&core.Event{Type: core.UView, View: v})
	h.Reset()
	// After the view, the old log is gone: a new flush redistributes
	// nothing.
	h.InjectUp(&core.Event{Type: core.UFlush, Failed: nil})
	for _, ev := range h.DownOfType(core.DSend) {
		if ev.Msg.Clone().PopUint8() == 3 {
			t.Fatal("old-view log redistributed after reset")
		}
	}
}
