package hbeat_test

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/hbeat"
	"horus/internal/layertest"
	"horus/internal/message"
)

const period = 10 * time.Millisecond

func harness(t *testing.T, opts ...hbeat.Option) *layertest.Harness {
	t.Helper()
	opts = append([]hbeat.Option{hbeat.WithPeriod(period)}, opts...)
	return layertest.New(t, hbeat.NewWith(opts...))
}

// beat fakes an arriving heartbeat from peer at the current virtual
// time.
func beat(h *layertest.Harness, peer core.EndpointID) {
	m := message.New(nil)
	m.PushUint8(3) // kBeat
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
}

func TestHeartbeatsSentOncePerPeriod(t *testing.T) {
	h := harness(t)
	peer := layertest.ID("peer", 1)
	h.InstallView(h.Self(), peer)
	h.Run(10 * period)
	casts := h.DownOfType(core.DCast)
	if n := len(casts); n < 8 || n > 11 {
		t.Fatalf("sent %d heartbeats over 10 periods, want ~10", n)
	}
}

func TestNoHeartbeatsWhenAlone(t *testing.T) {
	h := harness(t)
	h.InstallView(h.Self())
	h.Run(10 * period)
	if n := len(h.DownOfType(core.DCast)); n != 0 {
		t.Fatalf("singleton view emitted %d heartbeats", n)
	}
}

func TestBeatsAbsorbedDataPassedUp(t *testing.T) {
	h := harness(t)
	peer := layertest.ID("peer", 1)
	h.InstallView(h.Self(), peer)
	beat(h, peer)
	if n := len(h.UpOfType(core.UCast)); n != 0 {
		t.Fatalf("heartbeat leaked above the layer (%d upcalls)", n)
	}
	// A data cast round-trips: the kind byte pushed on the way down is
	// popped on the way up and the payload survives.
	h.InjectDown(&core.Event{Type: core.DCast, Msg: message.New([]byte("payload"))})
	down := h.DownOfType(core.DCast)
	if len(down) == 0 {
		t.Fatal("data cast did not reach the wire")
	}
	h.InjectUp(&core.Event{Type: core.UCast, Msg: down[len(down)-1].Msg.Clone(), Source: peer})
	up := h.UpOfType(core.UCast)
	if len(up) != 1 || string(up[0].Msg.Body()) != "payload" {
		t.Fatalf("data did not round-trip: %v", up)
	}
}

func TestSilentPeerSuspected(t *testing.T) {
	h := harness(t, hbeat.WithMaxTimeout(4*period))
	peer := layertest.ID("peer", 1)
	h.InstallView(h.Self(), peer)
	// Feed a few regular beats so the estimator converges...
	for i := 0; i < 5; i++ {
		h.Run(period)
		beat(h, peer)
	}
	if n := len(h.UpOfType(core.UProblem)); n != 0 {
		t.Fatalf("suspected a live peer (%d PROBLEMs)", n)
	}
	// ...then go silent. With mean≈period and the 4·period ceiling the
	// accusation must land within ~5 periods.
	h.Run(8 * period)
	probs := h.UpOfType(core.UProblem)
	if len(probs) != 1 {
		t.Fatalf("got %d PROBLEM upcalls, want exactly 1", len(probs))
	}
	if probs[0].Source != peer {
		t.Fatalf("suspected %v, want %v", probs[0].Source, peer)
	}
}

func TestSuspectReportedNotRepeated(t *testing.T) {
	var reports []core.EndpointID
	h := harness(t,
		hbeat.WithMaxTimeout(3*period),
		hbeat.WithoutProblemUpcalls(),
		hbeat.WithReporter(func(obs, sus core.EndpointID) { reports = append(reports, sus) }),
	)
	peer := layertest.ID("peer", 1)
	h.InstallView(h.Self(), peer)
	h.Run(20 * period) // silence well past the ceiling
	if len(reports) != 1 || reports[0] != peer {
		t.Fatalf("reports = %v, want exactly one for %v", reports, peer)
	}
	if n := len(h.UpOfType(core.UProblem)); n != 0 {
		t.Fatalf("WithoutProblemUpcalls still raised %d PROBLEMs", n)
	}
}

func TestSpeakingAgainRearmsSuspicion(t *testing.T) {
	h := harness(t, hbeat.WithMaxTimeout(3*period))
	peer := layertest.ID("peer", 1)
	h.InstallView(h.Self(), peer)
	h.Run(10 * period) // first suspicion
	if n := len(h.UpOfType(core.UProblem)); n != 1 {
		t.Fatalf("first silence: %d PROBLEMs, want 1", n)
	}
	beat(h, peer)      // the suspect speaks — re-armed
	h.Run(10 * period) // second silence
	if n := len(h.UpOfType(core.UProblem)); n != 2 {
		t.Fatalf("after re-arm + second silence: %d PROBLEMs, want 2", n)
	}
}

func TestViewChangeForgetsRemovedAndGracesReadmitted(t *testing.T) {
	h := harness(t, hbeat.WithMaxTimeout(3*period))
	peer := layertest.ID("peer", 1)
	h.InstallView(h.Self(), peer)
	h.Run(10 * period) // suspect peer
	if n := len(h.UpOfType(core.UProblem)); n != 1 {
		t.Fatalf("setup: %d PROBLEMs, want 1", n)
	}
	// Membership removes the suspect...
	h.InstallView(h.Self())
	h.Run(10 * period)
	if n := len(h.UpOfType(core.UProblem)); n != 1 {
		t.Fatalf("removed peer accused again: %d PROBLEMs", n)
	}
	// ...then re-admits it: the detector starts clean, with the full
	// grace ceiling before any fresh accusation.
	h.InstallView(h.Self(), peer)
	h.Run(2 * period)
	if n := len(h.UpOfType(core.UProblem)); n != 1 {
		t.Fatalf("re-admitted peer accused before grace expired: %d PROBLEMs", n)
	}
	h.Run(10 * period) // still silent — now a fresh verdict is due
	if n := len(h.UpOfType(core.UProblem)); n != 2 {
		t.Fatalf("re-admitted silent peer never re-suspected: %d PROBLEMs", n)
	}
}

func TestAdaptiveTimeoutTracksJitter(t *testing.T) {
	steady := harness(t, hbeat.WithMaxTimeout(100*period))
	jittery := harness(t, hbeat.WithMaxTimeout(100*period))
	peer := layertest.ID("peer", 1)
	steady.InstallView(steady.Self(), peer)
	jittery.InstallView(jittery.Self(), peer)
	for i := 0; i < 20; i++ {
		steady.Run(period)
		beat(steady, peer)
		// Alternate short/long gaps: same count, higher deviation.
		if i%2 == 0 {
			jittery.Run(period / 2)
		} else {
			jittery.Run(2 * period)
		}
		beat(jittery, peer)
	}
	layerOf := func(h *layertest.Harness) *hbeat.Hbeat {
		var l *hbeat.Hbeat
		h.EP.Do(func() { l = h.G.Stack().Focus("HBEAT").(*hbeat.Hbeat) })
		return l
	}
	st, jt := layerOf(steady).Timeout(peer), layerOf(jittery).Timeout(peer)
	if jt <= st {
		t.Fatalf("jittery timeout %v not above steady %v", jt, st)
	}
}

func TestDestroyCancelsTicker(t *testing.T) {
	h := harness(t)
	peer := layertest.ID("peer", 1)
	h.InstallView(h.Self(), peer)
	h.Run(2 * period)
	h.InjectDown(&core.Event{Type: core.DDestroy})
	before := len(h.DownOfType(core.DCast))
	h.Run(10 * period)
	if after := len(h.DownOfType(core.DCast)); after != before {
		t.Fatalf("destroyed layer kept beating: %d -> %d", before, after)
	}
}

// phiHarness is harness() plus a handle on the layer instance, so
// tests can read the φ estimator directly.
func phiHarness(t *testing.T, opts ...hbeat.Option) (*layertest.Harness, *hbeat.Hbeat) {
	t.Helper()
	opts = append([]hbeat.Option{hbeat.WithPeriod(period)}, opts...)
	var hb *hbeat.Hbeat
	h := layertest.New(t, func() core.Layer {
		l := hbeat.NewWith(opts...)()
		hb = l.(*hbeat.Hbeat)
		return l
	})
	return h, hb
}

func TestPhiGrowsMonotonicallyWithSilence(t *testing.T) {
	h, hb := phiHarness(t, hbeat.WithPhiAccrual(1e9)) // threshold out of reach: observe φ only
	peer := layertest.ID("peer", 1)
	h.InstallView(h.Self(), peer)
	for i := 0; i < 8; i++ {
		h.Run(period)
		beat(h, peer)
	}
	// φ right after an arrival must be small; every step of extra
	// silence must not decrease it; and a long silence must score
	// clearly suspicious.
	prev := hb.Phi(peer)
	if prev > 1 {
		t.Fatalf("φ=%.2f immediately after an arrival, want <1", prev)
	}
	for i := 0; i < 12; i++ {
		h.Run(period / 2)
		phi := hb.Phi(peer)
		if phi < prev {
			t.Fatalf("φ decreased with silence: %.3f -> %.3f at step %d", prev, phi, i)
		}
		prev = phi
	}
	if prev < 8 {
		t.Fatalf("φ=%.2f after 6 periods of silence, want ≥8", prev)
	}
}

func TestPhiAndBinaryAgreeOnCrashedMember(t *testing.T) {
	// The same life-then-crash pattern through both suspicion rules:
	// each must accuse the silent peer exactly once, and neither may
	// accuse while it is alive.
	run := func(opts ...hbeat.Option) []*core.Event {
		h := harness(t, append(opts, hbeat.WithMaxTimeout(5*period))...)
		peer := layertest.ID("peer", 1)
		h.InstallView(h.Self(), peer)
		for i := 0; i < 8; i++ {
			h.Run(period)
			beat(h, peer)
		}
		if n := len(h.UpOfType(core.UProblem)); n != 0 {
			t.Fatalf("accused a live peer (%d PROBLEMs)", n)
		}
		h.Run(10 * period) // crash: total silence
		return h.UpOfType(core.UProblem)
	}
	binary := run()
	phi := run(hbeat.WithPhiAccrual(8))
	if len(binary) != 1 || len(phi) != 1 {
		t.Fatalf("binary accused %d times, φ accused %d times; want exactly 1 each",
			len(binary), len(phi))
	}
	if binary[0].Source != phi[0].Source {
		t.Fatalf("detectors accused different members: %v vs %v",
			binary[0].Source, phi[0].Source)
	}
}

func TestPhiRespectsFloorAndCeiling(t *testing.T) {
	// Floor: an absurdly aggressive threshold cannot accuse before
	// MinTimeout. Ceiling: an absurdly lax threshold must still accuse
	// once silence passes MaxTimeout.
	h, _ := phiHarness(t,
		hbeat.WithPhiAccrual(0.0001),
		hbeat.WithMinTimeout(4*period),
		hbeat.WithMaxTimeout(20*period),
	)
	peer := layertest.ID("peer", 1)
	h.InstallView(h.Self(), peer)
	h.Run(period)
	beat(h, peer)
	h.Run(3 * period)
	if n := len(h.UpOfType(core.UProblem)); n != 0 {
		t.Fatalf("accused before the MinTimeout floor (%d PROBLEMs)", n)
	}

	h2, _ := phiHarness(t,
		hbeat.WithPhiAccrual(1e9),
		hbeat.WithMaxTimeout(5*period),
	)
	h2.InstallView(h2.Self(), peer)
	h2.Run(period)
	beat(h2, peer)
	h2.Run(10 * period)
	if n := len(h2.UpOfType(core.UProblem)); n != 1 {
		t.Fatalf("ceiling did not fire under an unreachable threshold: %d PROBLEMs, want 1", n)
	}
}

func TestSuspectUpcallsBandRateLimitAndRetraction(t *testing.T) {
	h := harness(t, hbeat.WithSuspectUpcalls())
	peer := layertest.ID("peer", 1)
	h.InstallView(h.Self(), peer)
	for i := 0; i < 10; i++ {
		h.Run(period)
		beat(h, peer)
	}
	if got := len(h.UpOfType(core.USuspect)); got != 0 {
		t.Fatalf("%d SUSPECT upcalls while the peer is healthy, want 0", got)
	}

	// Total silence: φ grows, bands cross.
	h.Run(20 * period)
	sus := h.UpOfType(core.USuspect)
	if len(sus) == 0 {
		t.Fatal("no SUSPECT upcall after long silence")
	}
	if len(sus) > len(hbeat.DefaultSuspectBands) {
		t.Fatalf("%d SUSPECT upcalls for one silence, want at most one per band", len(sus))
	}
	for i, ev := range sus {
		if ev.Source != peer {
			t.Fatalf("SUSPECT subject = %v, want %v", ev.Source, peer)
		}
		if i > 0 && ev.Phi < sus[i-1].Phi {
			t.Fatalf("φ not monotone within one silence: %v then %v", sus[i-1].Phi, ev.Phi)
		}
	}

	// Monotone within a band: further silence emits nothing new.
	n := len(sus)
	h.Run(20 * period)
	if got := len(h.UpOfType(core.USuspect)); got != n {
		t.Fatalf("re-emission within a band: %d upcalls grew to %d", n, got)
	}

	// The peer speaks again: exactly one retraction, carrying the lower φ.
	beat(h, peer)
	h.Run(3 * period)
	sus = h.UpOfType(core.USuspect)
	if len(sus) != n+1 {
		t.Fatalf("upcalls after the peer spoke = %d, want %d (one retraction)", len(sus), n+1)
	}
	if last := sus[len(sus)-1]; last.Phi >= sus[n-1].Phi {
		t.Fatalf("retraction φ %v not below the suspect φ %v", last.Phi, sus[n-1].Phi)
	}
}
