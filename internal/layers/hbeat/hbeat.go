// Package hbeat implements the HBEAT layer: a heartbeat-based failure
// detector filling the role of the paper's §5 "external service [that]
// picks up communication problem-reports and other failure
// information" — but producing that information itself instead of
// waiting for hand-injected PROBLEM events.
//
// Each instance multicasts a small heartbeat on a timer and tracks the
// inter-arrival times of traffic from every other member of the
// current view. Silence is turned into suspicion with an adaptive
// timeout in the style of Jacobson's RTT estimator: an EWMA of the
// inter-arrival mean plus k times an EWMA of its deviation, clamped to
// a configurable floor and ceiling. When a member stays silent past
// its timeout the layer emits a PROBLEM upcall — which a membership
// layer above converts into a clean view change — and/or reports the
// suspect to an external failure.Service via WithReporter.
//
// WithPhiAccrual replaces the binary timeout comparison with the
// φ-accrual estimator: the same arrival statistics feed a normal
// model of the inter-arrival process, the current silence is scored
// as a continuously growing suspicion level φ, and the accusation
// fires when φ crosses a configurable threshold. The min/max timeouts
// remain as hard floor and ceiling around the model.
//
// Any traffic counts as life, not just heartbeats, so a busy link
// never looks dead; and a suspect that speaks again is re-armed, so a
// member that was merely slow can be re-suspected later (the layer
// holds no grudges — permanent exclusion is membership's decision).
//
// The layer is placement-agnostic below the membership layer: it
// learns the view from view downcalls travelling past it (or VIEW
// upcalls, when placed above membership for monitoring only).
//
// Properties: requires nothing (placement-agnostic — periodic
// heartbeats are loss-tolerant over raw best effort and harmless over
// reliable FIFO); provides nothing; inherits everything.
package hbeat

import (
	"fmt"
	"math"
	"time"

	"horus/internal/core"
	"horus/internal/message"
)

// Wire kinds.
const (
	kData = 1 // cast pass-through
	kSend = 2 // send pass-through
	kBeat = 3 // heartbeat (absorbed)
)

// Defaults; override with Options.
const (
	defaultPeriod = 100 * time.Millisecond
	defaultK      = 4.0

	// ewmaGain and devGain are the Jacobson-style smoothing gains
	// (1/8 and 1/4, as in TCP's RTT estimation).
	ewmaGain = 0.125
	devGain  = 0.25
)

// Option configures the layer.
type Option func(*Hbeat)

// WithPeriod sets the heartbeat and sweep interval.
func WithPeriod(d time.Duration) Option { return func(h *Hbeat) { h.period = d } }

// WithK sets the deviation multiplier of the adaptive timeout
// (timeout = mean + k·dev).
func WithK(k float64) Option { return func(h *Hbeat) { h.k = k } }

// WithMinTimeout sets the suspicion-timeout floor. Default 2·period.
func WithMinTimeout(d time.Duration) Option { return func(h *Hbeat) { h.minTimeout = d } }

// WithMaxTimeout sets the suspicion-timeout ceiling. Default
// 20·period.
func WithMaxTimeout(d time.Duration) Option { return func(h *Hbeat) { h.maxTimeout = d } }

// WithPhiAccrual switches the suspicion rule from the binary adaptive
// timeout to the φ-accrual estimator (Hayashibara et al.): the
// inter-arrival process is modeled as a normal distribution from the
// same EWMA mean/deviation the binary rule uses, and the current
// silence is scored as
//
//	φ = -log10( P(next arrival is still later than this silence) )
//
// so φ grows continuously as silence stretches — φ=1 means a 10%
// chance the peer is still alive, φ=3 means 0.1%. A peer is suspected
// when φ reaches the given threshold (8 is a common production
// choice; lower is more aggressive). The min/max timeouts stay in
// force as floor and ceiling: no accusation before MinTimeout of
// silence however large φ gets, and silence past MaxTimeout accuses
// regardless of φ.
func WithPhiAccrual(threshold float64) Option {
	return func(h *Hbeat) { h.phiThreshold = threshold }
}

// WithReporter routes suspicions into an external failure-detection
// service (e.g. failure.Service.Report) instead of — or in addition
// to — PROBLEM upcalls. The observer argument is this endpoint.
func WithReporter(fn func(observer, suspect core.EndpointID)) Option {
	return func(h *Hbeat) { h.reporter = fn }
}

// WithoutProblemUpcalls suppresses the PROBLEM upcall, for stacks
// whose membership layer runs WithExternalSuspicions and hears
// verdicts only through the service fed by WithReporter.
func WithoutProblemUpcalls() Option { return func(h *Hbeat) { h.noUpcalls = true } }

// WithSuspectUpcalls turns on graded SUSPECT upcalls: whenever a
// peer's φ crosses one of the given ascending thresholds (bands), the
// layer emits one USuspect carrying the peer and its current φ. The
// contract (see DESIGN.md):
//
//   - Emission happens only in the periodic sweep, so a peer produces
//     at most one SUSPECT per heartbeat period (the rate limit).
//   - Within a band the signal is monotone: no re-emission until the
//     band changes.
//   - Band entry is immediate once silence clears the MinTimeout
//     floor; band exit is hysteretic — φ must fall clearly below the
//     current band's threshold (suspectHysteresis) before one
//     retraction USuspect carries the lower φ. A peer that speaks
//     again therefore produces exactly one retraction at the next
//     sweep, not a flap per sweep.
//
// Called without thresholds it uses DefaultSuspectBands.
func WithSuspectUpcalls(bands ...float64) Option {
	return func(h *Hbeat) {
		if len(bands) == 0 {
			bands = DefaultSuspectBands
		}
		h.suspectBands = append([]float64(nil), bands...)
	}
}

// DefaultSuspectBands are the φ thresholds used by WithSuspectUpcalls
// when none are given: φ=1 is a 10% chance the peer is still alive
// under the arrival model, each next band a tenfold less likely one.
var DefaultSuspectBands = []float64{1, 2, 4, 8}

// suspectHysteresis scales a band's threshold for the exit test: φ
// must fall below threshold×this before the band is left. It keeps a
// φ hovering at a threshold from emitting a SUSPECT flap every sweep.
const suspectHysteresis = 0.8

// New returns an HBEAT layer with default configuration.
func New() core.Layer { return newHbeat() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		h := newHbeat()
		for _, o := range opts {
			o(h)
		}
		return h
	}
}

func newHbeat() *Hbeat {
	return &Hbeat{period: defaultPeriod, k: defaultK}
}

// peerState tracks the arrival process of one monitored member.
type peerState struct {
	last      time.Duration // time of the most recent arrival
	mean      float64       // EWMA of inter-arrival time, in seconds
	dev       float64       // EWMA of |sample - mean|, in seconds
	samples   int
	suspected bool
	band      int // number of suspect thresholds currently crossed
}

// Hbeat is one HBEAT layer instance.
type Hbeat struct {
	core.Base

	members []core.EndpointID
	peers   map[core.EndpointID]*peerState

	period       time.Duration
	k            float64
	minTimeout   time.Duration
	maxTimeout   time.Duration
	phiThreshold float64   // 0 = binary adaptive timeout
	suspectBands []float64 // nil = no SUSPECT upcalls
	reporter     func(observer, suspect core.EndpointID)
	noUpcalls    bool

	tickCancel func()
	destroyed  bool
	stats      Stats
}

// Stats counts HBEAT activity.
type Stats struct {
	BeatsSent     int
	BeatsReceived int
	Suspicions    int // PROBLEM upcalls / reports emitted
	Rearmed       int // suspects that spoke again and were re-armed
	Suspects      int // SUSPECT upcalls for band rises
	Retractions   int // SUSPECT upcalls for band falls
}

// Name implements core.Layer.
func (h *Hbeat) Name() string { return "HBEAT" }

// Stats returns a snapshot of the layer's counters.
func (h *Hbeat) Stats() Stats { return h.stats }

// Timeout returns the current adaptive suspicion timeout for a peer
// (for tests and diagnostics); zero if the peer is not monitored.
func (h *Hbeat) Timeout(e core.EndpointID) time.Duration {
	p := h.peers[e]
	if p == nil {
		return 0
	}
	return h.timeoutOf(p)
}

// Phi returns the peer's current φ-accrual suspicion level (for tests
// and diagnostics); zero if the peer is not monitored or has no
// arrival history yet. Meaningful regardless of whether WithPhiAccrual
// selected φ as the suspicion rule.
func (h *Hbeat) Phi(e core.EndpointID) float64 {
	p := h.peers[e]
	if p == nil {
		return 0
	}
	return phiOf(p, h.Ctx.Now()-p.last)
}

// Init implements core.Layer.
func (h *Hbeat) Init(c *core.Context) error {
	if err := h.Base.Init(c); err != nil {
		return err
	}
	h.peers = make(map[core.EndpointID]*peerState)
	if h.minTimeout == 0 {
		h.minTimeout = 2 * h.period
	}
	if h.maxTimeout == 0 {
		h.maxTimeout = 20 * h.period
	}
	if h.period > 0 {
		h.tickCancel = c.SetTimer(h.period, h.tick)
	}
	return nil
}

// Down implements core.Layer.
func (h *Hbeat) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		ev.Msg.PushUint8(kData)
		h.Ctx.Down(ev)
	case core.DSend:
		ev.Msg.PushUint8(kSend)
		h.Ctx.Down(ev)
	case core.DView:
		h.applyView(ev.View)
		h.Ctx.Down(ev)
	case core.DDestroy:
		h.destroyed = true
		if h.tickCancel != nil {
			h.tickCancel()
			h.tickCancel = nil
		}
		h.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, "HBEAT: "+h.dumpLine())
		h.Ctx.Down(ev)
	default:
		h.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (h *Hbeat) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend:
		kind := ev.Msg.PopUint8()
		h.recordArrival(ev.Source)
		if kind == kBeat {
			h.stats.BeatsReceived++
			return // absorbed
		}
		h.Ctx.Up(ev)
	case core.UView:
		// Placed above the membership layer the view arrives as an
		// upcall instead of a downcall; monitor it the same way.
		h.applyView(ev.View)
		h.Ctx.Up(ev)
	default:
		h.Ctx.Up(ev)
	}
}

// applyView resets monitoring to the new membership: new members get a
// fresh grace period, removed members are forgotten, and members
// re-admitted after suspicion start clean (re-admission is decided
// above; the detector must not instantly re-accuse).
func (h *Hbeat) applyView(v *core.View) {
	if v == nil {
		return
	}
	h.members = append([]core.EndpointID(nil), v.Members...)
	now := h.Ctx.Now()
	alive := make(map[core.EndpointID]bool, len(v.Members))
	for _, m := range v.Members {
		alive[m] = true
		if m == h.Ctx.Self() {
			continue
		}
		p := h.peers[m]
		if p == nil || p.suspected {
			h.peers[m] = &peerState{last: now}
		} else {
			// Known-good peer: keep its learned arrival statistics but
			// restart the silence clock — view installation pauses
			// traffic, and that pause must not count against it.
			p.last = now
		}
	}
	for e := range h.peers {
		if !alive[e] {
			delete(h.peers, e)
		}
	}
}

// recordArrival folds one arrival into the peer's estimator.
func (h *Hbeat) recordArrival(src core.EndpointID) {
	if src == h.Ctx.Self() || src.IsZero() {
		return
	}
	p := h.peers[src]
	if p == nil {
		// Traffic from outside the view (merge discovery, pre-join):
		// not monitored.
		return
	}
	now := h.Ctx.Now()
	sample := (now - p.last).Seconds()
	p.last = now
	if p.samples == 0 {
		p.mean = sample
		p.dev = sample / 2
	} else {
		err := sample - p.mean
		p.mean += ewmaGain * err
		if err < 0 {
			err = -err
		}
		p.dev += devGain * (err - p.dev)
	}
	p.samples++
	if p.suspected {
		p.suspected = false
		h.stats.Rearmed++
	}
}

// timeoutOf computes the adaptive timeout for a peer.
func (h *Hbeat) timeoutOf(p *peerState) time.Duration {
	if p.samples == 0 {
		// No arrival observed yet: allow the full ceiling before the
		// first accusation.
		return h.maxTimeout
	}
	d := time.Duration((p.mean + h.k*p.dev) * float64(time.Second))
	if d < h.minTimeout {
		d = h.minTimeout
	}
	if d > h.maxTimeout {
		d = h.maxTimeout
	}
	return d
}

// phiOf scores a silence against the peer's learned arrival process:
// the probability that the next arrival is still coming after this
// much silence, under a normal model of the inter-arrival time, as
// -log10. Zero history scores zero — the grace before the first
// arrival is the ceiling timeout's job.
func phiOf(p *peerState, silence time.Duration) float64 {
	if p.samples == 0 {
		return 0
	}
	// A near-zero deviation (perfectly regular arrivals, as in the
	// deterministic simulator) would make the normal model a step
	// function that accuses one instant past the mean; floor it at a
	// tenth of the mean so regularity buys sharpness, not hair-trigger.
	dev := p.dev
	if min := p.mean / 10; dev < min {
		dev = min
	}
	pLater := 0.5 * math.Erfc((silence.Seconds()-p.mean)/(dev*math.Sqrt2))
	// Erfc underflows to zero for extreme silences; cap φ instead of
	// returning +Inf.
	if pLater < 1e-30 {
		pLater = 1e-30
	}
	return -math.Log10(pLater)
}

// suspicious applies the configured suspicion rule to one peer's
// current silence.
func (h *Hbeat) suspicious(p *peerState, silence time.Duration) bool {
	if h.phiThreshold <= 0 {
		return silence > h.timeoutOf(p)
	}
	if silence > h.maxTimeout {
		return true // ceiling: accuse regardless of the model
	}
	if silence <= h.minTimeout {
		return false // floor: never accuse this early
	}
	return phiOf(p, silence) >= h.phiThreshold
}

// tick sends a heartbeat and sweeps for silent members.
func (h *Hbeat) tick() {
	if h.destroyed {
		return
	}
	h.tickCancel = h.Ctx.SetTimer(h.period, h.tick)
	if len(h.members) >= 2 {
		m := message.New(nil)
		m.PushUint8(kBeat)
		h.stats.BeatsSent++
		h.Ctx.Down(&core.Event{Type: core.DCast, Msg: m})
	}
	now := h.Ctx.Now()
	// Sweep in view-rank order for determinism.
	for _, e := range h.members {
		if e == h.Ctx.Self() {
			continue
		}
		p := h.peers[e]
		if p == nil {
			continue
		}
		if h.suspectBands != nil {
			h.sweepSuspect(e, p, now)
		}
		if p.suspected {
			continue
		}
		if silence := now - p.last; h.suspicious(p, silence) {
			p.suspected = true
			h.stats.Suspicions++
			h.Ctx.Tracef("hbeat %s: suspecting %s after %v of silence",
				h.Ctx.Self(), e, silence)
			if h.reporter != nil {
				h.reporter(h.Ctx.Self(), e)
			}
			if !h.noUpcalls {
				h.Ctx.Up(&core.Event{Type: core.UProblem, Source: e})
			}
		}
	}
}

// sweepSuspect applies the banded SUSPECT rule to one peer: compare
// its current φ against the configured thresholds and emit one
// USuspect when the band changes — immediately on a rise (past the
// MinTimeout grace), hysteretically on a fall. Runs once per tick per
// peer, which is the emission rate limit.
func (h *Hbeat) sweepSuspect(e core.EndpointID, p *peerState, now time.Duration) {
	silence := now - p.last
	phi := phiOf(p, silence)
	raw := 0
	for _, b := range h.suspectBands {
		if phi >= b {
			raw++
		}
	}
	switch {
	case raw > p.band && silence > h.minTimeout:
		p.band = raw
		h.stats.Suspects++
		h.Ctx.Tracef("hbeat %s: suspect %s φ=%.2f (band %d)", h.Ctx.Self(), e, phi, raw)
		h.Ctx.Up(&core.Event{Type: core.USuspect, Source: e, Phi: phi})
	case raw < p.band && phi < suspectHysteresis*h.suspectBands[p.band-1]:
		p.band = raw
		h.stats.Retractions++
		h.Ctx.Tracef("hbeat %s: retract %s φ=%.2f (band %d)", h.Ctx.Self(), e, phi, raw)
		h.Ctx.Up(&core.Event{Type: core.USuspect, Source: e, Phi: phi})
	}
}

// CompileCast implements core.CastCompiler: a cast merely gains the
// 1-byte kData tag — all heartbeat work runs on the layer's own timer,
// never per cast — so the header is fully static.
func (h *Hbeat) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{Static: []byte{kData}}, true
}

// Transparent implements core.Skipper: the layer acts only on data
// traffic, views, and lifecycle events.
func (h *Hbeat) Transparent(t core.EventType, down bool) bool {
	if down {
		switch t {
		case core.DCast, core.DSend, core.DView, core.DDestroy, core.DDump:
			return false
		}
		return true
	}
	switch t {
	case core.UCast, core.USend, core.UView:
		return false
	}
	return true
}

func (h *Hbeat) dumpLine() string {
	return fmt.Sprintf("monitored=%d sent=%d recv=%d suspicions=%d rearmed=%d",
		len(h.peers), h.stats.BeatsSent, h.stats.BeatsReceived,
		h.stats.Suspicions, h.stats.Rearmed)
}
