package vss_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/vss"
	"horus/internal/layertest"
	"horus/internal/message"
)

func setup(t *testing.T) (*layertest.Harness, core.EndpointID) {
	t.Helper()
	h := layertest.New(t, vss.New)
	p := layertest.ID("p", 2)
	h.InstallView(h.Self(), p)
	h.Reset()
	return h, p
}

// identified builds a delivery as STABLE below would stamp it.
func identified(body string, src core.EndpointID, seq uint64) *core.Event {
	return &core.Event{Type: core.UCast, Msg: message.New([]byte(body)),
		Source: src, ID: core.MsgID{Origin: src, Seq: seq}}
}

func TestResendsOwnUnstableOnFlush(t *testing.T) {
	h, p := setup(t)
	h.InjectDown(core.NewCast(message.New([]byte("mine-1"))))
	h.InjectDown(core.NewCast(message.New([]byte("mine-2"))))
	h.InjectUp(&core.Event{Type: core.UFlush, Failed: nil})
	var fwds, dones int
	for _, ev := range h.DownOfType(core.DSend) {
		switch ev.Msg.Clone().PopUint8() {
		case 2: // kFwd
			fwds++
		case 3: // kDone
			dones++
		}
		if len(ev.Dests) != 1 || ev.Dests[0] != p {
			t.Fatalf("resend addressed to %v", ev.Dests)
		}
	}
	if fwds != 2 || dones != 1 {
		t.Fatalf("fwds=%d dones=%d, want 2/1", fwds, dones)
	}
	// Consent only after the peer's done.
	if got := h.DownOfType(core.DFlushOK); len(got) != 0 {
		t.Fatal("early consent")
	}
	d := message.New(nil)
	d.PushUint8(3)
	h.InjectUp(&core.Event{Type: core.USend, Msg: d, Source: p})
	if got := h.DownOfType(core.DFlushOK); len(got) != 1 {
		t.Fatal("no consent after peer done")
	}
}

func TestStabilityTrimsOwnBuffer(t *testing.T) {
	h, p := setup(t)
	h.InjectDown(core.NewCast(message.New([]byte("m1"))))
	h.InjectDown(core.NewCast(message.New([]byte("m2"))))
	// Everyone processed our first message.
	members := []core.EndpointID{h.Self(), p}
	m := core.NewStabilityMatrix(members)
	for _, mem := range members {
		m.Set(h.Self(), mem, 1)
	}
	h.InjectUp(&core.Event{Type: core.UStable, Stability: m})
	h.Reset()
	h.InjectUp(&core.Event{Type: core.UFlush, Failed: nil})
	fwds := 0
	for _, ev := range h.DownOfType(core.DSend) {
		if ev.Msg.Clone().PopUint8() == 2 {
			fwds++
		}
	}
	if fwds != 1 {
		t.Fatalf("resends = %d, want 1 (stable message trimmed)", fwds)
	}
}

func TestFwdDeliversAndDedups(t *testing.T) {
	h, p := setup(t)
	inner := message.New([]byte("resent"))
	f := message.New(inner.Marshal())
	f.PushUint64(1)
	f.PushUint8(2) // kFwd
	h.InjectUp(&core.Event{Type: core.USend, Msg: f.Clone(), Source: p})
	got := h.UpOfType(core.UCast)
	if len(got) != 1 || string(got[0].Msg.Body()) != "resent" {
		t.Fatalf("fwd delivery = %v", got)
	}
	// The direct copy arriving later is a duplicate.
	h.InjectUp(identified("resent", p, 1))
	if got := h.UpOfType(core.UCast); len(got) != 1 {
		t.Fatal("duplicate delivered after fwd")
	}
}

func TestUnidentifiedCastErrors(t *testing.T) {
	h, p := setup(t)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: message.New([]byte("anon")), Source: p})
	if got := h.UpOfType(core.USystemError); len(got) != 1 {
		t.Fatal("no SYSTEM_ERROR without stability identities")
	}
}
