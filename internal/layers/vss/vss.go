// Package vss implements the VSS layer of Table 3: virtually
// synchronous *sending*. Like FLUSH it upgrades a BMS layer's
// semi-synchrony toward virtual synchrony (P9), but with the cheaper
// sender-driven discipline: during a view change each member
// retransmits only its *own* unstable multicasts (known from the
// stability information of a STABLE layer below, property P14),
// rather than everything it has delivered.
//
// The saving has a price the name is honest about: messages whose
// sender is among the failed cannot be recovered by anyone, so the
// guarantee is virtual synchrony for messages from surviving senders.
// For full recovery of failed senders' messages use MBRSHIP or
// BMS+FLUSH; Table 3's multiple membership rows exist precisely
// because these disciplines trade cost against strength.
//
// Stack order: VSS above STABLE above BMS. VSS relies on the message
// identities STABLE attaches to deliveries and on BMS waiting for
// flush_ok.
//
// Properties: requires P3, P8, P10, P11, P12, P14, P15; provides P9
// (for surviving senders).
package vss

import (
	"fmt"
	"sort"

	"horus/internal/core"
	"horus/internal/message"
)

// Wire kinds.
const (
	kSend = 1 // subset send pass-through
	kFwd  = 2 // own-message retransmission {seq, wire}
	kDone = 3 // retransmission complete
)

// Vss is one VSS layer instance.
type Vss struct {
	core.Base

	view *core.View

	sendSeq uint64                      // our casts, aligned with STABLE's stamps
	sendBuf map[uint64]*message.Message // our unstable casts
	prefix  map[core.EndpointID]uint64  // contiguous delivered per origin
	sparse  map[core.MsgID]bool

	flushing  bool
	failed    map[core.EndpointID]bool
	doneFrom  map[core.EndpointID]bool
	consented bool

	stats Stats
}

// Stats counts VSS activity.
type Stats struct {
	Resent  int
	Flushes int
}

// New returns a VSS layer.
func New() core.Layer { return &Vss{} }

// Name implements core.Layer.
func (v *Vss) Name() string { return "VSS" }

// Stats returns a snapshot of the layer's counters.
func (v *Vss) Stats() Stats { return v.stats }

// Init implements core.Layer.
func (v *Vss) Init(c *core.Context) error {
	if err := v.Base.Init(c); err != nil {
		return err
	}
	v.sendBuf = make(map[uint64]*message.Message)
	v.prefix = make(map[core.EndpointID]uint64)
	v.sparse = make(map[core.MsgID]bool)
	v.failed = make(map[core.EndpointID]bool)
	v.doneFrom = make(map[core.EndpointID]bool)
	return nil
}

// Down implements core.Layer.
func (v *Vss) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		// STABLE below will stamp this cast with our next sequence
		// number; mirror the count so the retransmission buffer is
		// keyed identically.
		v.sendSeq++
		v.sendBuf[v.sendSeq] = ev.Msg.Clone()
		v.Ctx.Down(ev)
	case core.DSend:
		ev.Msg.PushUint8(kSend)
		v.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("VSS: buffered=%d resent=%d flushes=%d",
			len(v.sendBuf), v.stats.Resent, v.stats.Flushes))
		v.Ctx.Down(ev)
	default:
		v.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (v *Vss) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		if ev.ID.Origin.IsZero() {
			v.Ctx.Up(&core.Event{Type: core.USystemError,
				Reason: "vss: CAST without message identity (no stability layer below?)"})
			return
		}
		if v.seen(ev.ID) {
			return
		}
		v.record(ev.ID)
		v.Ctx.Up(ev)
	case core.USend:
		kind := ev.Msg.PopUint8()
		switch kind {
		case kSend:
			v.Ctx.Up(ev)
		case kFwd:
			v.receiveFwd(ev)
		case kDone:
			v.doneFrom[ev.Source] = true
			v.checkComplete()
		}
	case core.UStable:
		v.trim(ev.Stability)
		v.Ctx.Up(ev)
	case core.UFlush:
		v.startFlush(ev)
		v.Ctx.Up(ev)
	case core.UView:
		v.applyView(ev.View)
		v.Ctx.Up(ev)
	default:
		v.Ctx.Up(ev)
	}
}

func (v *Vss) seen(id core.MsgID) bool {
	return id.Seq <= v.prefix[id.Origin] || v.sparse[id]
}

func (v *Vss) record(id core.MsgID) {
	v.sparse[id] = true
	for v.sparse[core.MsgID{Origin: id.Origin, Seq: v.prefix[id.Origin] + 1}] {
		v.prefix[id.Origin]++
		delete(v.sparse, core.MsgID{Origin: id.Origin, Seq: v.prefix[id.Origin]})
	}
}

// startFlush retransmits our own unstable casts and announces
// completion.
func (v *Vss) startFlush(ev *core.Event) {
	v.stats.Flushes++
	v.flushing = true
	v.consented = false
	for _, e := range ev.Failed {
		v.failed[e] = true
	}
	dests := v.survivorsExceptSelf()
	seqs := make([]uint64, 0, len(v.sendBuf))
	for seq := range v.sendBuf {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		fwd := message.New(v.sendBuf[seq].Marshal())
		fwd.PushUint64(seq)
		fwd.PushUint8(kFwd)
		v.stats.Resent++
		if len(dests) > 0 {
			v.Ctx.Down(&core.Event{Type: core.DSend, Msg: fwd, Dests: dests})
		}
	}
	done := message.New(nil)
	done.PushUint8(kDone)
	if len(dests) > 0 {
		v.Ctx.Down(&core.Event{Type: core.DSend, Msg: done, Dests: dests})
	}
	v.doneFrom[v.Ctx.Self()] = true
	v.checkComplete()
}

// receiveFwd delivers a retransmitted cast if new.
func (v *Vss) receiveFwd(ev *core.Event) {
	seq := ev.Msg.PopUint64()
	id := core.MsgID{Origin: ev.Source, Seq: seq}
	if v.seen(id) {
		return
	}
	inner, err := message.Unmarshal(append([]byte(nil), ev.Msg.Body()...))
	if err != nil {
		return
	}
	v.record(id)
	v.Ctx.Up(&core.Event{Type: core.UCast, Msg: inner, Source: ev.Source, ID: id})
}

func (v *Vss) checkComplete() {
	if !v.flushing || v.consented || v.view == nil {
		return
	}
	for _, m := range v.view.Members {
		if v.failed[m] {
			continue
		}
		if !v.doneFrom[m] {
			return
		}
	}
	v.consented = true
	v.Ctx.Down(&core.Event{Type: core.DFlushOK})
}

func (v *Vss) survivorsExceptSelf() []core.EndpointID {
	if v.view == nil {
		return nil
	}
	out := make([]core.EndpointID, 0, len(v.view.Members))
	for _, m := range v.view.Members {
		if m != v.Ctx.Self() && !v.failed[m] {
			out = append(out, m)
		}
	}
	return out
}

// trim drops fully stable entries from the retransmission buffer.
func (v *Vss) trim(m *core.StabilityMatrix) {
	if m == nil {
		return
	}
	stable := m.MinStable(v.Ctx.Self())
	for seq := range v.sendBuf {
		if seq <= stable {
			delete(v.sendBuf, seq)
		}
	}
}

func (v *Vss) applyView(view *core.View) {
	v.view = view
	v.flushing = false
	v.consented = false
	v.failed = make(map[core.EndpointID]bool)
	v.doneFrom = make(map[core.EndpointID]bool)
}
