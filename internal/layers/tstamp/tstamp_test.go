package tstamp_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/tstamp"
	"horus/internal/layertest"
	"horus/internal/message"
)

func TestStampsVectorOnCast(t *testing.T) {
	h := layertest.New(t, tstamp.New)
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer)

	h.InjectDown(core.NewCast(message.New([]byte("x"))))
	sent := h.LastDown()
	// Echo back: the vector must surface in ev.Timestamp.
	h.InjectUp(&core.Event{Type: core.UCast, Msg: sent.Msg.Clone(), Source: h.Self()})
	got := h.LastUp()
	if got == nil || got.Timestamp == nil {
		t.Fatal("no timestamp attached")
	}
	if len(got.Timestamp) != 2 {
		t.Fatalf("vector length %d, want 2", len(got.Timestamp))
	}
	// Self (birth 1) is older than the peer (birth 2), so self has
	// rank 0. Our first send stamps 1 in our own entry.
	if got.Timestamp[0] != 1 || got.Timestamp[1] != 0 {
		t.Fatalf("vector = %v, want [1 0]", got.Timestamp)
	}
}

func TestVectorCarriesCausalDependency(t *testing.T) {
	h := layertest.New(t, tstamp.New)
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer)

	// Receive the peer's 3rd message: build a stamped message the way
	// a peer TSTAMP would (counts, then the kind byte).
	peerMsg := message.New([]byte("from peer"))
	pushCounts(peerMsg, []uint64{0, 3}) // peer is rank 1
	peerMsg.PushUint8(1)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: peerMsg, Source: peer})

	// ...then send: our vector must record the dependency.
	h.InjectDown(core.NewCast(message.New([]byte("reply"))))
	sent := h.LastDown().Msg.Clone()
	h.InjectUp(&core.Event{Type: core.UCast, Msg: sent, Source: h.Self()})
	got := h.LastUp()
	if got.Timestamp[0] != 1 || got.Timestamp[1] != 3 {
		t.Fatalf("vector = %v, want [1 3]", got.Timestamp)
	}
}

func TestVectorResetsOnView(t *testing.T) {
	h := layertest.New(t, tstamp.New)
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer)
	h.InjectDown(core.NewCast(message.New([]byte("a"))))
	// New view: counters restart.
	v2 := core.NewView(core.ViewID{Seq: 2, Coord: peer}, "test", []core.EndpointID{peer, h.Self()})
	h.InjectUp(&core.Event{Type: core.UView, View: v2})
	h.Reset()
	h.InjectDown(core.NewCast(message.New([]byte("b"))))
	sent := h.LastDown().Msg.Clone()
	h.InjectUp(&core.Event{Type: core.UCast, Msg: sent, Source: h.Self()})
	if ts := h.LastUp().Timestamp; ts[0] != 1 {
		t.Fatalf("vector after view change = %v, want own entry (rank 0) = 1", ts)
	}
}

func TestCastBeforeViewErrors(t *testing.T) {
	h := layertest.New(t, tstamp.New)
	h.InjectDown(core.NewCast(message.New([]byte("early"))))
	if got := h.UpOfType(core.USystemError); len(got) != 1 {
		t.Fatalf("no SYSTEM_ERROR for a cast before the first view: %v", got)
	}
	if got := h.DownOfType(core.DCast); len(got) != 0 {
		t.Fatal("unstamped cast leaked downward")
	}
}

// pushCounts mirrors wire.PushCounts for test message construction.
func pushCounts(m *message.Message, counts []uint64) {
	for i := len(counts) - 1; i >= 0; i-- {
		m.PushUint64(counts[i])
	}
	m.PushUint32(uint32(len(counts)))
}
