// Package tstamp implements the TSTAMP layer: causal (vector)
// timestamps, property P13.
//
// Table 3 of the paper lists P13 as a requirement of ORDER(causal) but
// names no provider; this layer is the reconstruction (see DESIGN.md).
// On each outgoing multicast it pushes the sender's vector timestamp —
// indexed by the current view's ranks — and on delivery it pops the
// vector into the event's Timestamp field for the ordering layer above
// to consume. The vector follows the standard causal-broadcast
// convention: entry r counts the messages from rank r that causally
// precede this one, and the sender's own entry is the 1-based index of
// this message in its stream.
//
// Properties: requires P3, P4, P9, P15; provides P13.
package tstamp

import (
	"fmt"

	"horus/internal/core"
	"horus/internal/wire"
)

// Wire kinds.
const (
	kData = 1
	kSend = 2
)

// Tstamp is one TSTAMP layer instance.
type Tstamp struct {
	core.Base
	view   *core.View
	vector []uint64 // deliveries seen per rank; own entry counts our sends
	myRank int
	stats  Stats
}

// Stats counts TSTAMP activity.
type Stats struct {
	Stamped int
}

// New returns a TSTAMP layer.
func New() core.Layer { return &Tstamp{myRank: -1} }

// Name implements core.Layer.
func (t *Tstamp) Name() string { return "TSTAMP" }

// Stats returns a snapshot of the layer's counters.
func (t *Tstamp) Stats() Stats { return t.stats }

// Down implements core.Layer.
func (t *Tstamp) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		if t.myRank < 0 {
			// No view yet: cannot stamp; the causal layer above will
			// reject unstamped data, so fail loudly.
			t.Ctx.Up(&core.Event{Type: core.USystemError,
				Reason: "tstamp: cast before first view installation"})
			return
		}
		t.vector[t.myRank]++
		t.stats.Stamped++
		wire.PushCounts(ev.Msg, t.vector)
		ev.Msg.PushUint8(kData)
		t.Ctx.Down(ev)
	case core.DSend:
		ev.Msg.PushUint8(kSend)
		t.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("TSTAMP: rank=%d vector=%v", t.myRank, t.vector))
		t.Ctx.Down(ev)
	default:
		t.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (t *Tstamp) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		kind := ev.Msg.PopUint8()
		if kind != kData {
			return
		}
		ev.Timestamp = wire.PopCounts(ev.Msg)
		t.noteDelivery(ev)
		t.Ctx.Up(ev)
	case core.USend:
		kind := ev.Msg.PopUint8()
		if kind != kSend {
			return
		}
		t.Ctx.Up(ev)
	case core.UView:
		t.view = ev.View
		t.vector = make([]uint64, ev.View.Size())
		t.myRank = ev.View.Rank(t.Ctx.Self())
		t.Ctx.Up(ev)
	default:
		t.Ctx.Up(ev)
	}
}

// noteDelivery advances the local vector for a peer's message so later
// sends carry the causal dependency. Our own loop-back copy is skipped
// (our entry counts sends, already incremented at cast time).
func (t *Tstamp) noteDelivery(ev *core.Event) {
	if t.view == nil {
		return
	}
	r := t.view.Rank(ev.Source)
	if r < 0 || r == t.myRank || r >= len(t.vector) {
		return
	}
	if r < len(ev.Timestamp) && ev.Timestamp[r] > t.vector[r] {
		t.vector[r] = ev.Timestamp[r]
	}
}
