// Package fc implements the flow-control layer (Figure 1: "preventing
// network congestion") with a credit-based window, the scheme the NAK
// layer's status traffic is said to enable ("window-based flow control
// may be implemented", §7).
//
// Each receiver grants the sender a window of credits; a multicast
// consumes one credit per receiver, and sends beyond the window queue
// at the sender until credit returns. Receivers replenish credit in
// half-window batches as they deliver.
package fc

import (
	"fmt"

	"horus/internal/core"
	"horus/internal/message"
)

// Wire kinds.
const (
	kData   = 1
	kSend   = 2
	kCredit = 3 // {granted cumulative count}
)

// DefaultWindow is the default number of outstanding multicasts a
// sender may have toward any one receiver.
const DefaultWindow = 32

// Fc is one flow-control layer instance.
type Fc struct {
	core.Base
	window int

	view *core.View
	sent uint64 // multicasts sent (total, for diagnostics)
	// sentTo counts the casts actually addressed to each receiver —
	// the sender-side frame of the credit protocol. It is per receiver,
	// not global: a cast launched while a member was out of the view
	// never reaches that member's stream, so it must not count against
	// the window the member grants. Both sides drop a departed member's
	// state on a view change (applyView), so after a re-admission the
	// frames restart at zero in lockstep instead of drifting by the
	// casts the member missed — the drift that used to wedge the
	// window permanently (grants forever below the raised credit).
	sentTo  map[core.EndpointID]uint64
	credit  map[core.EndpointID]uint64 // cumulative window end granted by each receiver
	queue   []*core.Event              // casts awaiting credit
	recvd   map[core.EndpointID]uint64 // multicasts received per sender
	granted map[core.EndpointID]uint64 // cumulative grant we sent to each sender
	stats   Stats
}

// Stats counts flow-control activity.
type Stats struct {
	Queued  int // casts that had to wait for credit
	Credits int // credit messages sent
}

// New returns a flow-control layer with the default window.
func New() core.Layer { return &Fc{window: DefaultWindow} }

// NewWithWindow returns a factory with the given window size.
func NewWithWindow(w int) core.Factory {
	return func() core.Layer { return &Fc{window: w} }
}

// Name implements core.Layer.
func (f *Fc) Name() string { return "FC" }

// Stats returns a snapshot of the layer's counters.
func (f *Fc) Stats() Stats { return f.stats }

// QueueLen reports how many casts are waiting for credit.
func (f *Fc) QueueLen() int { return len(f.queue) }

// Init implements core.Layer.
func (f *Fc) Init(c *core.Context) error {
	if err := f.Base.Init(c); err != nil {
		return err
	}
	if f.window < 1 {
		return fmt.Errorf("fc: window %d < 1", f.window)
	}
	f.sentTo = make(map[core.EndpointID]uint64)
	f.credit = make(map[core.EndpointID]uint64)
	f.recvd = make(map[core.EndpointID]uint64)
	f.granted = make(map[core.EndpointID]uint64)
	return nil
}

// Down implements core.Layer.
func (f *Fc) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		f.queue = append(f.queue, ev)
		if len(f.queue) > 1 || !f.drain() {
			f.stats.Queued++
		}
	case core.DSend:
		ev.Msg.PushUint8(kSend)
		f.Ctx.Down(ev)
	case core.DView:
		f.applyView(ev)
		f.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("FC: window=%d sent=%d queued=%d credits=%d",
			f.window, f.sent, len(f.queue), f.stats.Credits))
		f.Ctx.Down(ev)
	default:
		f.Ctx.Down(ev)
	}
}

// drain sends queued casts while credit allows; reports whether the
// queue emptied.
func (f *Fc) drain() bool {
	for len(f.queue) > 0 {
		if !f.mayLaunch() {
			return false
		}
		ev := f.queue[0]
		f.queue = f.queue[1:]
		f.sent++
		if f.view != nil {
			for _, m := range f.view.Members {
				if m != f.Ctx.Self() {
					f.sentTo[m]++
				}
			}
		}
		ev.Msg.PushUint8(kData)
		f.Ctx.Down(ev)
	}
	return true
}

// mayLaunch reports whether one more multicast fits every receiver's
// window.
func (f *Fc) mayLaunch() bool {
	if f.view == nil {
		return true
	}
	for _, m := range f.view.Members {
		if m == f.Ctx.Self() {
			continue
		}
		if f.sentTo[m] >= f.credit[m] {
			return false
		}
	}
	return true
}

// Up implements core.Layer.
func (f *Fc) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		kind := ev.Msg.PopUint8()
		if kind != kData {
			return
		}
		f.recvd[ev.Source]++
		f.maybeGrant(ev.Source)
		f.Ctx.Up(ev)
	case core.USend:
		kind := ev.Msg.PopUint8()
		switch kind {
		case kSend:
			f.Ctx.Up(ev)
		case kCredit:
			grant := ev.Msg.PopUint64()
			if grant > f.credit[ev.Source] {
				f.credit[ev.Source] = grant
				f.drain()
			}
		}
	case core.UView:
		// FC may sit above a membership layer (views arrive from
		// below) or above a static stack (views install from above via
		// the view downcall); both paths reset the windows.
		f.applyView(ev)
		f.Ctx.Up(ev)
	default:
		f.Ctx.Up(ev)
	}
}

// maybeGrant replenishes the sender's window after half of it is
// consumed.
func (f *Fc) maybeGrant(sender core.EndpointID) {
	newEnd := f.recvd[sender] + uint64(f.window)
	if newEnd < f.granted[sender]+uint64(f.window)/2 {
		return
	}
	f.granted[sender] = newEnd
	m := message.New(nil)
	m.PushUint64(newEnd)
	m.PushUint8(kCredit)
	f.stats.Credits++
	f.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: []core.EndpointID{sender}})
}

// applyView resets windows for the new membership: every member
// restarts with one full window toward every other (the view change
// is a synchronization point), members no longer in the view lose
// their credit and grant state entirely, and the blocked-cast queue
// is re-evaluated. Dropping a removed member's state matters twice
// over: casts stalled on a failed receiver's exhausted credit drain
// instead of wedging, and a stale generous grant cannot bypass flow
// control (or permanently wedge the window, see sentTo) if the member
// is later re-admitted under the same identity.
func (f *Fc) applyView(ev *core.Event) {
	if ev.View == nil {
		return
	}
	f.view = ev.View
	alive := make(map[core.EndpointID]bool, len(f.view.Members))
	for _, m := range f.view.Members {
		alive[m] = true
		if f.credit[m] < f.sentTo[m]+uint64(f.window) {
			f.credit[m] = f.sentTo[m] + uint64(f.window)
		}
		if f.granted[m] < f.recvd[m]+uint64(f.window) {
			f.granted[m] = f.recvd[m] + uint64(f.window)
		}
	}
	for m := range f.credit {
		if !alive[m] {
			delete(f.credit, m)
			delete(f.sentTo, m)
		}
	}
	for m := range f.recvd {
		if !alive[m] {
			delete(f.recvd, m)
		}
	}
	for m := range f.granted {
		if !alive[m] {
			delete(f.granted, m)
		}
	}
	f.drain()
}

// Transparent implements core.Skipper: FC acts on data and view
// events; control traffic is skipped (§10 item 1).
func (f *Fc) Transparent(t core.EventType, down bool) bool {
	if down {
		switch t {
		case core.DCast, core.DSend, core.DView, core.DDump:
			return false
		}
		return true
	}
	switch t {
	case core.UCast, core.USend, core.UView:
		return false
	}
	return true
}
