package fc_test

import (
	"fmt"
	"testing"

	"horus/internal/core"
	"horus/internal/layers/fc"
	"horus/internal/layertest"
	"horus/internal/message"
)

func window4(t *testing.T) (*layertest.Harness, *fc.Fc, core.EndpointID) {
	t.Helper()
	h := layertest.New(t, fc.NewWithWindow(4))
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer)
	layer := h.G.Focus("FC").(*fc.Fc)
	return h, layer, peer
}

func TestWindowBlocksAtCapacity(t *testing.T) {
	h, layer, _ := window4(t)
	for i := 0; i < 10; i++ {
		h.InjectDown(core.NewCast(message.New([]byte(fmt.Sprintf("m%d", i)))))
	}
	if got := len(h.DownOfType(core.DCast)); got != 4 {
		t.Fatalf("%d casts launched with window 4, want 4", got)
	}
	if layer.QueueLen() != 6 {
		t.Fatalf("queued = %d, want 6", layer.QueueLen())
	}
}

func TestCreditReleasesQueue(t *testing.T) {
	h, _, peer := window4(t)
	for i := 0; i < 10; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	// The peer grants a cumulative window end of 8.
	credit := message.New(nil)
	credit.PushUint64(8)
	credit.PushUint8(3) // kCredit
	h.InjectUp(&core.Event{Type: core.USend, Msg: credit, Source: peer})
	if got := len(h.DownOfType(core.DCast)); got != 8 {
		t.Fatalf("%d casts after credit to 8, want 8", got)
	}
	// FIFO must be preserved through the queue.
	for i, ev := range h.DownOfType(core.DCast) {
		if ev.Msg.Body()[0] != byte(i) {
			t.Fatalf("flow control reordered casts: %d at position %d", ev.Msg.Body()[0], i)
		}
	}
}

func TestReceiverGrantsCredit(t *testing.T) {
	h, _, peer := window4(t)
	// Receive 2 casts (half the window) from the peer: a credit grant
	// must go back.
	for i := 0; i < 2; i++ {
		m := message.New([]byte("in"))
		m.PushUint8(1) // kData
		h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	}
	grants := h.DownOfType(core.DSend)
	if len(grants) == 0 {
		t.Fatal("no credit sent after receiving half a window")
	}
	g := grants[len(grants)-1]
	if len(g.Dests) != 1 || g.Dests[0] != peer {
		t.Fatalf("credit addressed to %v, want %v", g.Dests, peer)
	}
}

func TestViewChangeReopensWindow(t *testing.T) {
	h, layer, peer := window4(t)
	for i := 0; i < 8; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	if layer.QueueLen() != 4 {
		t.Fatalf("queued = %d, want 4", layer.QueueLen())
	}
	// A view change resynchronizes: every member restarts with a full
	// window.
	v := core.NewView(core.ViewID{Seq: 2, Coord: h.Self()}, "test",
		[]core.EndpointID{h.Self(), peer})
	h.InjectUp(&core.Event{Type: core.UView, View: v})
	if got := len(h.DownOfType(core.DCast)); got != 8 {
		t.Fatalf("%d casts after view change, want 8", got)
	}
}

// grant injects a kCredit message from the given member with the given
// cumulative window end.
func grant(h *layertest.Harness, from core.EndpointID, end uint64) {
	m := message.New(nil)
	m.PushUint64(end)
	m.PushUint8(3) // kCredit
	h.InjectUp(&core.Event{Type: core.USend, Msg: m, Source: from})
}

// A member that leaves the view must take its credit state with it: a
// generous grant collected before the removal used to survive the
// round trip and let a re-admitted member's window be bypassed
// entirely.
func TestRemovalDropsStaleCredit(t *testing.T) {
	h, layer, peer := window4(t)
	// The peer is feeling generous, then crashes out of the view.
	grant(h, peer, 1000)
	h.InstallView(h.Self())
	// It comes back under the same identity: the old grant is from a
	// stream that no longer exists and must be gone.
	h.InstallView(h.Self(), peer)
	for i := 0; i < 10; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	if got := len(h.DownOfType(core.DCast)); got != 4 {
		t.Fatalf("%d casts launched after re-admission, want 4 (fresh window)", got)
	}
	if layer.QueueLen() != 6 {
		t.Fatalf("queued = %d, want 6", layer.QueueLen())
	}
}

// Casts stalled on a failed receiver's exhausted credit must drain as
// soon as a view change removes that receiver, instead of wedging
// behind a member that will never grant again.
func TestRemovalReleasesBlockedQueue(t *testing.T) {
	h := layertest.New(t, fc.NewWithWindow(4))
	b := layertest.ID("b", 2)
	c := layertest.ID("c", 3)
	h.InstallView(h.Self(), b, c)
	layer := h.G.Focus("FC").(*fc.Fc)
	for i := 0; i < 10; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	if got := len(h.DownOfType(core.DCast)); got != 4 {
		t.Fatalf("%d casts launched with window 4, want 4", got)
	}
	// c keeps granting; b has gone silent. The queue stays blocked on b.
	grant(h, c, 12)
	if got := len(h.DownOfType(core.DCast)); got != 4 {
		t.Fatalf("%d casts launched while still blocked on b, want 4", got)
	}
	// Membership expels b: the queue must re-evaluate and drain under
	// c's credit alone.
	h.InstallView(h.Self(), c)
	if got := len(h.DownOfType(core.DCast)); got != 10 {
		t.Fatalf("%d casts launched after b was removed, want 10", got)
	}
	if layer.QueueLen() != 0 {
		t.Fatalf("queue not re-evaluated on removal: %d left", layer.QueueLen())
	}
}

// A remove/re-add cycle must leave both sides of the credit protocol
// in the same frame. With the old global sent counter, casts launched
// while the member was away advanced the sender's frame but not the
// receiver's, so every later grant fell short of the raised credit and
// the window wedged permanently.
func TestRemovedThenReaddedMemberDoesNotWedge(t *testing.T) {
	h, layer, peer := window4(t)
	h.InjectDown(core.NewCast(message.New([]byte{0})))
	h.InjectDown(core.NewCast(message.New([]byte{1})))
	// The peer drops out; five casts go to the remaining singleton view
	// and never touch the peer's stream.
	h.InstallView(h.Self())
	for i := 2; i < 7; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	if got := len(h.DownOfType(core.DCast)); got != 7 {
		t.Fatalf("%d casts launched in singleton view, want 7", got)
	}
	// Re-admission: both frames restart at zero, one full window opens.
	h.InstallView(h.Self(), peer)
	for i := 7; i < 17; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	if got := len(h.DownOfType(core.DCast)); got != 11 {
		t.Fatalf("%d casts launched after re-admission, want 11 (one window more)", got)
	}
	// The re-added peer grants from its fresh frame: having delivered 4,
	// it grants a cumulative end of 8, then 12. Each grant must be
	// accepted and open the window further — this is exactly the grant
	// sequence the old code rejected as "stale".
	grant(h, peer, 8)
	if got := len(h.DownOfType(core.DCast)); got != 15 {
		t.Fatalf("%d casts after fresh-frame grant to 8, want 15", got)
	}
	grant(h, peer, 12)
	if got := len(h.DownOfType(core.DCast)); got != 17 {
		t.Fatalf("%d casts after fresh-frame grant to 12, want 17", got)
	}
	if layer.QueueLen() != 0 {
		t.Fatalf("window wedged: %d casts still queued", layer.QueueLen())
	}
}

func TestDeliveryPassesUp(t *testing.T) {
	h, _, peer := window4(t)
	m := message.New([]byte("body"))
	m.PushUint8(1) // kData
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	got := h.LastUp()
	if got == nil || got.Type != core.UCast || string(got.Msg.Body()) != "body" {
		t.Fatalf("delivery mangled: %v", got)
	}
}
