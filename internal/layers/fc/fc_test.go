package fc_test

import (
	"fmt"
	"testing"

	"horus/internal/core"
	"horus/internal/layers/fc"
	"horus/internal/layertest"
	"horus/internal/message"
)

func window4(t *testing.T) (*layertest.Harness, *fc.Fc, core.EndpointID) {
	t.Helper()
	h := layertest.New(t, fc.NewWithWindow(4))
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer)
	layer := h.G.Focus("FC").(*fc.Fc)
	return h, layer, peer
}

func TestWindowBlocksAtCapacity(t *testing.T) {
	h, layer, _ := window4(t)
	for i := 0; i < 10; i++ {
		h.InjectDown(core.NewCast(message.New([]byte(fmt.Sprintf("m%d", i)))))
	}
	if got := len(h.DownOfType(core.DCast)); got != 4 {
		t.Fatalf("%d casts launched with window 4, want 4", got)
	}
	if layer.QueueLen() != 6 {
		t.Fatalf("queued = %d, want 6", layer.QueueLen())
	}
}

func TestCreditReleasesQueue(t *testing.T) {
	h, _, peer := window4(t)
	for i := 0; i < 10; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	// The peer grants a cumulative window end of 8.
	credit := message.New(nil)
	credit.PushUint64(8)
	credit.PushUint8(3) // kCredit
	h.InjectUp(&core.Event{Type: core.USend, Msg: credit, Source: peer})
	if got := len(h.DownOfType(core.DCast)); got != 8 {
		t.Fatalf("%d casts after credit to 8, want 8", got)
	}
	// FIFO must be preserved through the queue.
	for i, ev := range h.DownOfType(core.DCast) {
		if ev.Msg.Body()[0] != byte(i) {
			t.Fatalf("flow control reordered casts: %d at position %d", ev.Msg.Body()[0], i)
		}
	}
}

func TestReceiverGrantsCredit(t *testing.T) {
	h, _, peer := window4(t)
	// Receive 2 casts (half the window) from the peer: a credit grant
	// must go back.
	for i := 0; i < 2; i++ {
		m := message.New([]byte("in"))
		m.PushUint8(1) // kData
		h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	}
	grants := h.DownOfType(core.DSend)
	if len(grants) == 0 {
		t.Fatal("no credit sent after receiving half a window")
	}
	g := grants[len(grants)-1]
	if len(g.Dests) != 1 || g.Dests[0] != peer {
		t.Fatalf("credit addressed to %v, want %v", g.Dests, peer)
	}
}

func TestViewChangeReopensWindow(t *testing.T) {
	h, layer, peer := window4(t)
	for i := 0; i < 8; i++ {
		h.InjectDown(core.NewCast(message.New([]byte{byte(i)})))
	}
	if layer.QueueLen() != 4 {
		t.Fatalf("queued = %d, want 4", layer.QueueLen())
	}
	// A view change resynchronizes: every member restarts with a full
	// window.
	v := core.NewView(core.ViewID{Seq: 2, Coord: h.Self()}, "test",
		[]core.EndpointID{h.Self(), peer})
	h.InjectUp(&core.Event{Type: core.UView, View: v})
	if got := len(h.DownOfType(core.DCast)); got != 8 {
		t.Fatalf("%d casts after view change, want 8", got)
	}
}

func TestDeliveryPassesUp(t *testing.T) {
	h, _, peer := window4(t)
	m := message.New([]byte("body"))
	m.PushUint8(1) // kData
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	got := h.LastUp()
	if got == nil || got.Type != core.UCast || string(got.Msg.Body()) != "body" {
		t.Fatalf("delivery mangled: %v", got)
	}
}
