// Package compress implements the compression layer (Figure 1: "to
// improve bandwidth use").
//
// The whole message content — upper headers plus body — is deflated;
// a one-byte header records whether compression was applied, since
// incompressible content is sent verbatim rather than enlarged.
package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"horus/internal/core"
	"horus/internal/message"
)

const (
	rawForm        = 0
	compressedForm = 1
)

// Compress is one compression layer instance.
type Compress struct {
	core.Base
	level int
	stats Stats
}

// Stats counts compression activity.
type Stats struct {
	Compressed     int // messages sent deflated
	Incompressible int // messages sent verbatim
	BytesIn        int
	BytesOut       int
	Rejected       int // undecodable arrivals dropped
}

// New returns a compression layer at the default level.
func New() core.Layer { return &Compress{level: flate.DefaultCompression} }

// NewWithLevel returns a factory at the given flate level (1..9).
func NewWithLevel(level int) core.Factory {
	return func() core.Layer { return &Compress{level: level} }
}

// Name implements core.Layer.
func (c *Compress) Name() string { return "COMPRESS" }

// Stats returns a snapshot of the layer's counters.
func (c *Compress) Stats() Stats { return c.stats }

// Down implements core.Layer.
func (c *Compress) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend:
		plain := ev.Msg.Marshal()
		c.stats.BytesIn += len(plain)
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, c.level)
		if err == nil {
			_, err = w.Write(plain)
		}
		if err == nil {
			err = w.Close()
		}
		if err != nil || buf.Len() >= len(plain) {
			m := message.New(plain)
			m.PushUint8(rawForm)
			ev.Msg = m
			c.stats.Incompressible++
			c.stats.BytesOut += len(plain)
			c.Ctx.Down(ev)
			return
		}
		m := message.New(buf.Bytes())
		m.PushUint8(compressedForm)
		ev.Msg = m
		c.stats.Compressed++
		c.stats.BytesOut += buf.Len()
		c.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("COMPRESS: deflated=%d raw=%d in=%dB out=%dB",
			c.stats.Compressed, c.stats.Incompressible, c.stats.BytesIn, c.stats.BytesOut))
		c.Ctx.Down(ev)
	default:
		c.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (c *Compress) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend:
		form := ev.Msg.PopUint8()
		data := ev.Msg.Body()
		if form == compressedForm {
			out, err := io.ReadAll(flate.NewReader(bytes.NewReader(data)))
			if err != nil {
				c.stats.Rejected++
				return
			}
			data = out
		}
		inner, err := message.Unmarshal(data)
		if err != nil {
			c.stats.Rejected++
			return
		}
		ev.Msg = inner
		c.Ctx.Up(ev)
	default:
		c.Ctx.Up(ev)
	}
}

// Transparent implements core.Skipper: COMPRESS acts only on casts and
// sends (§10 item 1 layer skipping).
func (c *Compress) Transparent(t core.EventType, down bool) bool {
	if down {
		switch t {
		case core.DCast, core.DSend, core.DDump:
			return false
		}
		return true
	}
	switch t {
	case core.UCast, core.USend:
		return false
	}
	return true
}
