package compress_test

import (
	"bytes"
	"crypto/rand"
	"testing"

	"horus/internal/core"
	"horus/internal/layers/compress"
	"horus/internal/layertest"
	"horus/internal/message"
)

func TestCompressibleShrinksAndRoundTrips(t *testing.T) {
	h := layertest.New(t, compress.New)
	body := bytes.Repeat([]byte("abcdefgh"), 512)
	h.InjectDown(core.NewCast(message.New(body)))
	sent := h.LastDown()
	if sent.Msg.Len() >= len(body) {
		t.Fatalf("compressed size %d >= original %d", sent.Msg.Len(), len(body))
	}
	h.InjectUp(&core.Event{Type: core.UCast, Msg: sent.Msg.Clone(), Source: layertest.ID("peer", 2)})
	got := h.LastUp()
	if got == nil || !bytes.Equal(got.Msg.Body(), body) {
		t.Fatal("decompression mismatch")
	}
	c := h.G.Focus("COMPRESS").(*compress.Compress)
	if c.Stats().Compressed != 1 {
		t.Errorf("Compressed = %d, want 1", c.Stats().Compressed)
	}
}

func TestIncompressibleSentVerbatim(t *testing.T) {
	h := layertest.New(t, compress.New)
	body := make([]byte, 2048)
	if _, err := rand.Read(body); err != nil {
		t.Fatal(err)
	}
	h.InjectDown(core.NewCast(message.New(body)))
	sent := h.LastDown()
	h.InjectUp(&core.Event{Type: core.UCast, Msg: sent.Msg.Clone(), Source: layertest.ID("peer", 2)})
	got := h.LastUp()
	if got == nil || !bytes.Equal(got.Msg.Body(), body) {
		t.Fatal("verbatim round trip failed")
	}
	c := h.G.Focus("COMPRESS").(*compress.Compress)
	if c.Stats().Incompressible != 1 {
		t.Errorf("Incompressible = %d, want 1", c.Stats().Incompressible)
	}
}

func TestUpperHeadersSurviveCompression(t *testing.T) {
	h := layertest.New(t, compress.New)
	m := message.New(bytes.Repeat([]byte("x"), 256))
	m.PushString("upper-layer-header")
	h.InjectDown(core.NewCast(m))
	h.InjectUp(&core.Event{Type: core.UCast, Msg: h.LastDown().Msg.Clone(), Source: layertest.ID("peer", 2)})
	got := h.LastUp()
	if got == nil || got.Msg.PopString() != "upper-layer-header" {
		t.Fatal("upper header lost in compression")
	}
}

func TestCorruptCompressedDataDropped(t *testing.T) {
	h := layertest.New(t, compress.New)
	h.InjectDown(core.NewCast(message.New(bytes.Repeat([]byte("abc"), 300))))
	m := h.LastDown().Msg.Clone()
	m.Body()[3] ^= 0x55
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: layertest.ID("peer", 2)})
	// Either flate fails or the inner unmarshal fails; nothing may be
	// delivered as a CAST. (A same-length corruption can in principle
	// decompress; the checksum layer exists for end-to-end integrity.)
	for _, got := range h.UpOfType(core.UCast) {
		if bytes.Equal(got.Msg.Body(), bytes.Repeat([]byte("abc"), 300)) {
			t.Fatal("corrupted message delivered intact?!")
		}
	}
}
