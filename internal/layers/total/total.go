// Package total implements the TOTAL layer: totally ordered multicast
// within group memberships, using a rotating token (paper §7).
//
// During normal operation a single token circulates; only the token
// holder stamps messages with global order numbers, and receivers
// deliver strictly in stamp order. An "oracle" at each member decides
// who should get the token next — here, the holder grants the token to
// the longest-waiting requester, and requests chase the token through
// last-known-holder forwarding. The token cannot always be placed
// optimally ("the oracle cannot always make the optimal decision for
// minimal overhead, but ... comes close in many cases").
//
// On failure the token may be lost, but "this is not a problem": the
// layer relies on the virtually synchronous view changes of MBRSHIP
// below it. When a new view installs, every surviving member holds the
// same set of delivered messages; buffered stamped messages drain
// deterministically, and a deterministic rule (the lowest-ranked
// member) chooses the first token holder of the new view. Messages
// cast while the sender lacked the token across a view change are
// re-submitted in the new view (the paper instead floods them
// unordered during the flush and sorts by sender rank; the observable
// guarantee — one total order among survivors — is the same, see
// DESIGN.md).
//
// As the paper notes, TOTAL needs no direct failure-detector
// interaction: failure information arrives as view updates from
// MBRSHIP, which is how it sidesteps the FLP impossibility argument.
//
// Properties: requires P3, P8, P9, P15; provides P6.
package total

import (
	"fmt"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/wire"
)

// Wire kinds.
const (
	kData  = 1 // ordered multicast {ord}
	kToken = 2 // token grant {nextOrd, waiting queue}
	kReq   = 3 // token request (forwarded toward the holder)
	kSend  = 4 // application subset send pass-through
)

// defaultReqRetry re-sends an unanswered token request; requests can
// be lost only by chasing a stale holder, so this is a safety net.
const defaultReqRetry = 100 * time.Millisecond

// Option configures the layer.
type Option func(*Total)

// WithRequestRetry sets the token-request retry interval.
func WithRequestRetry(d time.Duration) Option { return func(t *Total) { t.reqRetry = d } }

// New returns a TOTAL layer with default configuration.
func New() core.Layer { return newTotal() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		t := newTotal()
		for _, o := range opts {
			o(t)
		}
		return t
	}
}

func newTotal() *Total {
	return &Total{reqRetry: defaultReqRetry}
}

// Total is one TOTAL layer instance.
type Total struct {
	core.Base

	view *core.View

	holder    bool
	lastKnown core.EndpointID // best guess at the current token holder
	nextOrd   uint64          // next order stamp (holder) / high-water mark (others)
	delivered uint64          // last order stamp delivered

	pendingOut []*message.Message       // casts awaiting the token
	buffer     map[uint64]*core.Event   // stamped messages awaiting their turn
	queue      []core.EndpointID        // waiting requesters (holder only)
	queued     map[core.EndpointID]bool // dedup for queue
	requesting bool
	reqCancel  func()
	flushing   bool // membership flush in progress: stamping is paused
	primary    bool // current view is primary: stamping allowed

	reqRetry  time.Duration
	destroyed bool
	stats     Stats
}

// Stats counts TOTAL activity.
type Stats struct {
	Stamped   int // messages this member ordered while holding the token
	Delivered int // ordered messages delivered
	TokenOps  int // token grants sent
	Requests  int // token requests sent (including retries)
	Resubmits int // casts re-submitted after a view change
}

// Name implements core.Layer.
func (t *Total) Name() string { return "TOTAL" }

// Stats returns a snapshot of the layer's counters.
func (t *Total) Stats() Stats { return t.stats }

// Holder reports whether this member currently holds the token.
func (t *Total) Holder() bool { return t.holder }

// Quiescent implements core.Quiescer for the SWITCH reconfiguration
// protocol: on the sending side the layer is quiescent when no cast is
// still waiting for the token; on the delivery side, when the reorder
// buffer has drained (every stamped cast delivered in order).
func (t *Total) Quiescent(down bool) bool {
	if down {
		return len(t.pendingOut) == 0
	}
	return len(t.buffer) == 0
}

// Init implements core.Layer.
func (t *Total) Init(c *core.Context) error {
	if err := t.Base.Init(c); err != nil {
		return err
	}
	t.buffer = make(map[uint64]*core.Event)
	t.queued = make(map[core.EndpointID]bool)
	return nil
}

// Down implements core.Layer.
func (t *Total) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		t.pendingOut = append(t.pendingOut, ev.Msg)
		if t.holder {
			t.flushPending()
		} else {
			t.requestToken()
		}
	case core.DSend:
		ev.Msg.PushUint8(kSend)
		t.Ctx.Down(ev)
	case core.DView:
		// An externally decided view (Table 1 view downcall /
		// Group.InstallView, the §5 external membership service). The
		// service's views are authoritative and agreed at every member
		// — the property.ExternalViews contract — so the view is
		// primary by definition: there is no partition-minority twin
		// installing a competing order space. Apply before passing
		// down so the holder election sees the view the lower layers
		// are about to adopt; resubmit only after the descent, when
		// COM's destination set and NAK's streams match the new view.
		if ev.View != nil {
			t.primary = true
			t.applyView(ev.View)
		}
		t.Ctx.Down(ev)
		t.resubmitPending()
	case core.DDestroy:
		t.destroyed = true
		t.cancelReq()
		t.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, "TOTAL: "+t.dumpLine())
		t.Ctx.Down(ev)
	default:
		t.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (t *Total) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		kind := ev.Msg.PopUint8()
		if kind != kData {
			// Only ordered data travels by multicast.
			return
		}
		t.receiveData(ev)
	case core.USend:
		kind := ev.Msg.PopUint8()
		switch kind {
		case kSend:
			t.Ctx.Up(ev)
		case kToken:
			t.receiveToken(ev)
		case kReq:
			t.receiveReq(ev)
		}
	case core.UFlush:
		t.flushing = true
		t.Ctx.Up(ev)
	case core.UView:
		t.primary = ev.Primary
		t.applyView(ev.View)
		t.Ctx.Up(ev)
		// Resubmit only after the view has gone up: casting down can
		// self-deliver synchronously through the membership layer, and
		// a delivery emitted before the UView upcall would reach the
		// application in the old view while remote members deliver the
		// same cast in the new one — a view-agreement violation.
		t.resubmitPending()
	default:
		t.Ctx.Up(ev)
	}
}

// flushPending stamps and sends everything waiting, then considers
// passing the token on. While the membership layer is flushing a view
// change, stamping is paused: a cast stamped mid-flush would be
// deferred below and released into the NEXT view still carrying this
// view's order stamp, colliding with the fresh order space. The pause
// makes the cut communication-closed; applyView resumes stamping.
// The same hazard exists in a non-primary view under the
// primary-partition restriction: the membership layer parks every
// cast until the member rejoins a primary view, so a stamp issued now
// would be released into a future view's fresh order space — and the
// other side of the partition would release its own identically
// numbered stamps, colliding with ours. Stamping waits for primacy;
// the casts queue in pendingOut and resubmit on the primary install.
func (t *Total) flushPending() {
	if t.flushing || !t.primary {
		return
	}
	for _, msg := range t.pendingOut {
		t.nextOrd++
		msg.PushUint64(t.nextOrd)
		msg.PushUint8(kData)
		t.stats.Stamped++
		t.Ctx.Down(&core.Event{Type: core.DCast, Msg: msg})
	}
	t.pendingOut = nil
	t.serveQueue()
}

// requestToken asks the presumed holder for the token.
func (t *Total) requestToken() {
	if t.requesting || t.view == nil {
		return
	}
	t.requesting = true
	t.sendReq()
	t.armReqTimer()
}

func (t *Total) sendReq() {
	target := t.lastKnown
	if target.IsZero() || target == t.Ctx.Self() || (t.view != nil && !t.view.Contains(target)) {
		if t.view == nil || t.view.Size() == 0 {
			return
		}
		target = t.view.Members[0]
	}
	if target == t.Ctx.Self() {
		return
	}
	m := message.New(nil)
	wire.PushEndpointID(m, t.Ctx.Self()) // original requester survives forwarding
	m.PushUint8(kReq)
	t.stats.Requests++
	t.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: []core.EndpointID{target}})
}

func (t *Total) armReqTimer() {
	t.cancelReq()
	if t.reqRetry <= 0 {
		return
	}
	t.reqCancel = t.Ctx.SetTimer(t.reqRetry, func() {
		t.reqCancel = nil
		if t.destroyed || !t.requesting || t.holder {
			return
		}
		t.sendReq()
		t.armReqTimer()
	})
}

func (t *Total) cancelReq() {
	if t.reqCancel != nil {
		t.reqCancel()
		t.reqCancel = nil
	}
}

// receiveReq queues a request at the holder, or forwards it toward the
// holder (the chasing step of the oracle). The requester's identity is
// carried in the message so it survives forwarding; the requester's
// retry timer bounds the imprecision of a stale chase.
func (t *Total) receiveReq(ev *core.Event) {
	from := wire.PopEndpointID(ev.Msg)
	if t.holder {
		if !t.queued[from] && from != t.Ctx.Self() {
			t.queued[from] = true
			t.queue = append(t.queue, from)
		}
		t.serveQueue()
		return
	}
	// Not the holder: forward toward our best guess, unless that
	// would bounce the request straight back.
	if t.lastKnown.IsZero() || t.lastKnown == from ||
		t.lastKnown == t.Ctx.Self() || t.lastKnown == ev.Source {
		return
	}
	m := message.New(nil)
	wire.PushEndpointID(m, from)
	m.PushUint8(kReq)
	t.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: []core.EndpointID{t.lastKnown}})
}

// serveQueue passes the token to the next waiting requester, provided
// we have nothing left to send.
func (t *Total) serveQueue() {
	if !t.holder || len(t.pendingOut) > 0 {
		return
	}
	for len(t.queue) > 0 {
		next := t.queue[0]
		t.queue = t.queue[1:]
		delete(t.queued, next)
		if next == t.Ctx.Self() || t.view == nil || !t.view.Contains(next) {
			continue
		}
		m := message.New(nil)
		wire.PushIDList(m, t.queue)
		m.PushUint64(t.nextOrd)
		m.PushUint8(kToken)
		t.stats.TokenOps++
		t.holder = false
		t.lastKnown = next
		t.queue = nil
		t.queued = make(map[core.EndpointID]bool)
		t.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: []core.EndpointID{next}})
		return
	}
}

// receiveToken makes this member the holder.
func (t *Total) receiveToken(ev *core.Event) {
	nextOrd := ev.Msg.PopUint64()
	waiting := wire.PopIDList(ev.Msg)
	t.holder = true
	t.lastKnown = t.Ctx.Self()
	if nextOrd > t.nextOrd {
		t.nextOrd = nextOrd
	}
	t.requesting = false
	t.cancelReq()
	for _, w := range waiting {
		if !t.queued[w] && w != t.Ctx.Self() {
			t.queued[w] = true
			t.queue = append(t.queue, w)
		}
	}
	t.flushPending()
}

// receiveData buffers a stamped message and drains in order.
func (t *Total) receiveData(ev *core.Event) {
	ord := ev.Msg.PopUint64()
	t.lastKnown = ev.Source
	if ord >= t.nextOrd {
		t.nextOrd = ord
	}
	if ord <= t.delivered {
		return
	}
	t.buffer[ord] = ev
	t.drain()
}

func (t *Total) drain() {
	for {
		ev, ok := t.buffer[t.delivered+1]
		if !ok {
			return
		}
		delete(t.buffer, t.delivered+1)
		t.delivered++
		t.stats.Delivered++
		t.Ctx.Up(ev)
	}
}

// applyView handles a virtually synchronous view change: drain every
// buffered stamped message (virtual synchrony made the buffered sets
// identical at all survivors, so gap-skipping drain order is
// deterministic), reset the order space, and elect the lowest-ranked
// member as first holder. Re-submission of casts that never obtained
// the token is deferred to resubmitPending.
func (t *Total) applyView(v *core.View) {
	// Deliver leftovers in ascending stamp order; any gaps belong to
	// messages no survivor delivered.
	for len(t.buffer) > 0 {
		low := ^uint64(0)
		for ord := range t.buffer {
			if ord < low {
				low = ord
			}
		}
		ev := t.buffer[low]
		delete(t.buffer, low)
		t.delivered = low
		t.stats.Delivered++
		t.Ctx.Up(ev)
	}

	t.view = v
	t.flushing = false
	t.delivered = 0
	t.nextOrd = 0
	t.buffer = make(map[uint64]*core.Event)
	t.queue = nil
	t.queued = make(map[core.EndpointID]bool)
	t.requesting = false
	t.cancelReq()
	if v.Size() > 0 {
		t.holder = v.Members[0] == t.Ctx.Self()
		t.lastKnown = v.Members[0]
	}
}

// resubmitPending re-submits casts that never obtained the token in
// the previous view. Kept separate from applyView so the caller can
// forward the UView upcall first; see the UView case in Up.
func (t *Total) resubmitPending() {
	if len(t.pendingOut) > 0 {
		t.stats.Resubmits += len(t.pendingOut)
		if t.holder {
			t.flushPending()
		} else {
			t.requestToken()
		}
	}
}

func (t *Total) dumpLine() string {
	return fmt.Sprintf("holder=%v nextOrd=%d delivered=%d pending=%d buffered=%d tokens=%d reqs=%d",
		t.holder, t.nextOrd, t.delivered, len(t.pendingOut), len(t.buffer), t.stats.TokenOps, t.stats.Requests)
}
