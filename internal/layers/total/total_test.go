package total_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/total"
	"horus/internal/layertest"
	"horus/internal/message"
)

func setup(t *testing.T) (*layertest.Harness, *total.Total, core.EndpointID) {
	t.Helper()
	h := layertest.New(t, total.New)
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer) // self (birth 1) is rank 0: first holder
	h.Reset()
	l := h.G.Focus("TOTAL").(*total.Total)
	return h, l, peer
}

func TestHolderStampsImmediately(t *testing.T) {
	h, l, _ := setup(t)
	if !l.Holder() {
		t.Fatal("rank 0 is not the initial token holder")
	}
	h.InjectDown(core.NewCast(message.New([]byte("m"))))
	sent := h.DownOfType(core.DCast)
	if len(sent) != 1 {
		t.Fatalf("sent %d casts, want 1", len(sent))
	}
	kind := sent[0].Msg.PopUint8()
	ord := sent[0].Msg.PopUint64()
	if kind != 1 || ord != 1 {
		t.Fatalf("kind=%d ord=%d, want data/1", kind, ord)
	}
}

func TestNonHolderRequestsToken(t *testing.T) {
	h := layertest.New(t, total.New)
	older := layertest.ID("0older", 0)
	h.InstallView(h.Self(), older) // the peer (birth 0) is rank 0
	h.Reset()
	l := h.G.Focus("TOTAL").(*total.Total)
	if l.Holder() {
		t.Fatal("rank 1 should not hold the token")
	}
	h.InjectDown(core.NewCast(message.New([]byte("m"))))
	if got := h.DownOfType(core.DCast); len(got) != 0 {
		t.Fatal("cast sent without the token")
	}
	reqs := h.DownOfType(core.DSend)
	if len(reqs) != 1 || reqs[0].Dests[0] != older {
		t.Fatalf("token request = %v, want one to %v", reqs, older)
	}
}

func TestReceiverDeliversInStampOrder(t *testing.T) {
	h, _, peer := setup(t)
	mk := func(ord uint64, body string) *core.Event {
		m := message.New([]byte(body))
		m.PushUint64(ord)
		m.PushUint8(1) // kData
		return &core.Event{Type: core.UCast, Msg: m, Source: peer}
	}
	h.InjectUp(mk(2, "second"))
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatal("out-of-order stamp delivered early")
	}
	h.InjectUp(mk(1, "first"))
	got := h.UpOfType(core.UCast)
	if len(got) != 2 || string(got[0].Msg.Body()) != "first" || string(got[1].Msg.Body()) != "second" {
		t.Fatalf("delivery order: %v", got)
	}
}

func TestTokenGrantOnRequest(t *testing.T) {
	h, l, peer := setup(t)
	// The peer asks for the token; we have nothing pending, so it goes.
	req := message.New(nil)
	req.PushString(peer.Site)
	req.PushUint64(peer.Birth)
	req.PushUint8(3) // kReq
	h.InjectUp(&core.Event{Type: core.USend, Msg: req, Source: peer})
	if l.Holder() {
		t.Fatal("holder kept the token despite a waiting requester")
	}
	grants := h.DownOfType(core.DSend)
	if len(grants) != 1 || grants[0].Dests[0] != peer {
		t.Fatalf("token grant = %v", grants)
	}
	if kind := grants[0].Msg.PopUint8(); kind != 2 { // kToken
		t.Fatalf("grant kind = %d", kind)
	}
}

func TestViewChangeResetsOrderAndElectsRankZero(t *testing.T) {
	h, l, peer := setup(t)
	// Pass the token away, then a view change must return it to rank 0
	// (us) and reset the order space.
	req := message.New(nil)
	req.PushString(peer.Site)
	req.PushUint64(peer.Birth)
	req.PushUint8(3)
	h.InjectUp(&core.Event{Type: core.USend, Msg: req, Source: peer})
	if l.Holder() {
		t.Fatal("setup: token still here")
	}
	v := core.NewView(core.ViewID{Seq: 2, Coord: h.Self()}, "test",
		[]core.EndpointID{h.Self(), peer})
	h.InjectUp(&core.Event{Type: core.UView, View: v, Primary: true})
	if !l.Holder() {
		t.Fatal("lowest rank did not regenerate the token after the view change")
	}
	h.Reset()
	h.InjectDown(core.NewCast(message.New([]byte("fresh"))))
	sent := h.DownOfType(core.DCast)
	sent[0].Msg.PopUint8()
	if ord := sent[0].Msg.PopUint64(); ord != 1 {
		t.Fatalf("first stamp of new view = %d, want 1", ord)
	}
}

func TestPendingCastsResubmittedAfterViewChange(t *testing.T) {
	h := layertest.New(t, total.New)
	older := layertest.ID("0older", 0)
	h.InstallView(h.Self(), older)
	h.Reset()
	// Cast without the token: buffered.
	h.InjectDown(core.NewCast(message.New([]byte("stuck"))))
	if got := h.DownOfType(core.DCast); len(got) != 0 {
		t.Fatal("cast escaped without token")
	}
	// The holder crashes; the new view makes us rank 0.
	v := core.NewView(core.ViewID{Seq: 2, Coord: h.Self()}, "test",
		[]core.EndpointID{h.Self()})
	h.InjectUp(&core.Event{Type: core.UView, View: v, Primary: true})
	sent := h.DownOfType(core.DCast)
	if len(sent) != 1 {
		t.Fatalf("pending cast not resubmitted: %d", len(sent))
	}
	l := h.G.Focus("TOTAL").(*total.Total)
	if l.Stats().Resubmits != 1 {
		t.Errorf("Resubmits = %d, want 1", l.Stats().Resubmits)
	}
}
