// Package stable implements the STABLE layer: end-to-end message
// stability (paper §9).
//
// A message is stable once it has been *processed* by all its
// surviving destination processes, where "processed" is defined
// entirely by the application: the application calls the ack downcall
// (Group.Ack) when it considers a message handled — displayed,
// logged to disk, safe to delete, whatever its semantics demand. The
// layer spreads this acknowledgement information and reports it with
// STABLE upcalls carrying a stability matrix: entry (i, j) counts how
// many of member i's messages member j has processed. This is the
// paper's answer to the end-to-end argument: a mechanism in the
// communication system whose meaning is controlled by the application.
//
// The layer stamps each outgoing multicast with a per-sender sequence
// number and attaches the resulting MsgID to delivered CAST events, so
// applications can acknowledge precisely.
//
// Properties: requires P3, P4, P8, P10, P11, P12; provides P14.
package stable

import (
	"fmt"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/wire"
)

// Wire kinds.
const (
	kData = 1 // stamped multicast {seq}
	kSend = 2 // subset send pass-through
	kAcks = 3 // ack-vector gossip {origins, counts}
)

const defaultAckPeriod = 50 * time.Millisecond

// Option configures the layer.
type Option func(*Stable)

// WithAckPeriod sets the ack-gossip interval.
func WithAckPeriod(d time.Duration) Option { return func(s *Stable) { s.ackPeriod = d } }

// New returns a STABLE layer with default configuration.
func New() core.Layer { return newStable() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		s := newStable()
		for _, o := range opts {
			o(s)
		}
		return s
	}
}

func newStable() *Stable {
	return &Stable{ackPeriod: defaultAckPeriod}
}

// Stable is one STABLE layer instance.
type Stable struct {
	core.Base

	view    *core.View
	sendSeq uint64

	// acked tracks the application's acknowledgements: per origin, the
	// set of acked sequence numbers beyond the contiguous prefix.
	ackPrefix map[core.EndpointID]uint64
	ackSparse map[core.MsgID]bool

	matrix *core.StabilityMatrix

	ackPeriod  time.Duration
	gossipStop func()
	dirty      bool // local acks advanced since last gossip
	destroyed  bool
	stats      Stats
}

// Stats counts STABLE activity.
type Stats struct {
	Stamped     int // outgoing casts stamped
	AcksApplied int // ack downcalls processed
	GossipsSent int
	Updates     int // STABLE upcalls emitted
}

// Name implements core.Layer.
func (s *Stable) Name() string { return "STABLE" }

// Stats returns a snapshot of the layer's counters.
func (s *Stable) Stats() Stats { return s.stats }

// Matrix returns the current stability matrix (nil before the first
// view).
func (s *Stable) Matrix() *core.StabilityMatrix { return s.matrix }

// Init implements core.Layer.
func (s *Stable) Init(c *core.Context) error {
	if err := s.Base.Init(c); err != nil {
		return err
	}
	s.ackPrefix = make(map[core.EndpointID]uint64)
	s.ackSparse = make(map[core.MsgID]bool)
	if s.ackPeriod > 0 {
		s.gossipStop = c.SetTimer(s.ackPeriod, s.gossipTick)
	}
	return nil
}

// Down implements core.Layer.
func (s *Stable) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		s.sendSeq++
		ev.Msg.PushUint64(s.sendSeq)
		ev.Msg.PushUint8(kData)
		s.stats.Stamped++
		s.Ctx.Down(ev)
	case core.DSend:
		ev.Msg.PushUint8(kSend)
		s.Ctx.Down(ev)
	case core.DAck:
		s.applyAck(ev.ID)
	case core.DStable:
		// Garbage-collection hint; nothing retained here.
	case core.DDestroy:
		s.destroyed = true
		if s.gossipStop != nil {
			s.gossipStop()
		}
		s.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, "STABLE: "+s.dumpLine())
		s.Ctx.Down(ev)
	default:
		s.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (s *Stable) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		kind := ev.Msg.PopUint8()
		switch kind {
		case kData:
			seq := ev.Msg.PopUint64()
			ev.ID = core.MsgID{Origin: ev.Source, Seq: seq}
			s.Ctx.Up(ev)
		case kAcks:
			s.receiveAcks(ev)
		}
	case core.USend:
		kind := ev.Msg.PopUint8()
		switch kind {
		case kSend:
			s.Ctx.Up(ev)
		case kAcks:
			s.receiveAcks(ev)
		}
	case core.UView:
		s.applyView(ev.View)
		s.Ctx.Up(ev)
	default:
		s.Ctx.Up(ev)
	}
}

// applyAck records that the application processed id.
func (s *Stable) applyAck(id core.MsgID) {
	if id.Origin.IsZero() || id.Seq == 0 {
		return
	}
	if id.Seq <= s.ackPrefix[id.Origin] || s.ackSparse[id] {
		return
	}
	s.stats.AcksApplied++
	s.ackSparse[id] = true
	for s.ackSparse[core.MsgID{Origin: id.Origin, Seq: s.ackPrefix[id.Origin] + 1}] {
		s.ackPrefix[id.Origin]++
		delete(s.ackSparse, core.MsgID{Origin: id.Origin, Seq: s.ackPrefix[id.Origin]})
	}
	s.dirty = true
	s.updateMatrixLocal()
}

// updateMatrixLocal folds our own ack prefixes into the matrix and
// reports changes upward.
func (s *Stable) updateMatrixLocal() {
	if s.matrix == nil {
		return
	}
	changed := false
	for origin, count := range s.ackPrefix {
		if s.matrix.Get(origin, s.Ctx.Self()) < count {
			s.matrix.Set(origin, s.Ctx.Self(), count)
			changed = true
		}
	}
	if changed {
		s.emitStable()
	}
}

func (s *Stable) emitStable() {
	s.stats.Updates++
	s.Ctx.Up(&core.Event{Type: core.UStable, Stability: s.matrix.Clone()})
}

// gossipTick multicasts our ack vector.
func (s *Stable) gossipTick() {
	if s.destroyed {
		return
	}
	s.gossipStop = s.Ctx.SetTimer(s.ackPeriod, s.gossipTick)
	if s.view == nil || s.view.Size() < 2 || !s.dirty {
		return
	}
	s.dirty = false
	origins := append([]core.EndpointID(nil), s.view.Members...)
	counts := make([]uint64, len(origins))
	for i, o := range origins {
		counts[i] = s.ackPrefix[o]
	}
	m := message.New(nil)
	wire.PushCounts(m, counts)
	wire.PushIDList(m, origins)
	m.PushUint8(kAcks)
	s.stats.GossipsSent++
	dests := make([]core.EndpointID, 0, len(origins))
	for _, e := range origins {
		if e != s.Ctx.Self() {
			dests = append(dests, e)
		}
	}
	s.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: dests})
}

// receiveAcks merges a peer's ack vector into the matrix.
func (s *Stable) receiveAcks(ev *core.Event) {
	origins := wire.PopIDList(ev.Msg)
	counts := wire.PopCounts(ev.Msg)
	if s.matrix == nil || len(origins) != len(counts) {
		return
	}
	changed := false
	for i, o := range origins {
		if s.matrix.Get(o, ev.Source) < counts[i] {
			s.matrix.Set(o, ev.Source, counts[i])
			changed = true
		}
	}
	if changed {
		s.emitStable()
	}
}

// applyView rebuilds the matrix over the new membership. Ack state is
// kept for surviving members (sequence numbers are continuous across
// views at this layer).
func (s *Stable) applyView(v *core.View) {
	s.view = v
	old := s.matrix
	s.matrix = core.NewStabilityMatrix(v.Members)
	if old != nil {
		s.matrix.MergeFrom(old)
	}
	s.updateMatrixLocal()
	s.dirty = true
}

func (s *Stable) dumpLine() string {
	return fmt.Sprintf("sent=%d acks=%d gossips=%d updates=%d",
		s.sendSeq, s.stats.AcksApplied, s.stats.GossipsSent, s.stats.Updates)
}
