package stable_test

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/stable"
	"horus/internal/layertest"
	"horus/internal/message"
)

func setup(t *testing.T) (*layertest.Harness, core.EndpointID) {
	t.Helper()
	h := layertest.New(t, stable.NewWith(stable.WithAckPeriod(10*time.Millisecond)))
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer)
	h.Reset()
	return h, peer
}

func TestAttachesMsgIDOnDelivery(t *testing.T) {
	h, peer := setup(t)
	// Build a stamped data message as a peer STABLE would: seq, kind.
	m := message.New([]byte("x"))
	m.PushUint64(7)
	m.PushUint8(1)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	got := h.LastUp()
	if got == nil || got.ID.Origin != peer || got.ID.Seq != 7 {
		t.Fatalf("ID = %v, want %v/7", got.ID, peer)
	}
}

func TestAcksGossipAndMatrixUpdates(t *testing.T) {
	h, peer := setup(t)
	m := message.New([]byte("x"))
	m.PushUint64(1)
	m.PushUint8(1)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	// The application acknowledges.
	h.InjectDown(&core.Event{Type: core.DAck, ID: core.MsgID{Origin: peer, Seq: 1}})

	// A STABLE upcall reports our own row immediately.
	ups := h.UpOfType(core.UStable)
	if len(ups) == 0 {
		t.Fatal("no STABLE upcall after local ack")
	}
	if got := ups[len(ups)-1].Stability.Get(peer, h.Self()); got != 1 {
		t.Fatalf("matrix[peer,self] = %d, want 1", got)
	}
	// The gossip timer spreads the ack vector.
	h.Run(50 * time.Millisecond)
	var gossips int
	for _, ev := range h.DownOfType(core.DSend) {
		_ = ev
		gossips++
	}
	if gossips == 0 {
		t.Fatal("ack vector never gossiped")
	}
}

func TestOutOfOrderAcksCountContiguously(t *testing.T) {
	h, peer := setup(t)
	for seq := uint64(1); seq <= 3; seq++ {
		m := message.New([]byte("x"))
		m.PushUint64(seq)
		m.PushUint8(1)
		h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	}
	// Ack 3 before 1 and 2: the matrix must not claim 3 processed.
	h.InjectDown(&core.Event{Type: core.DAck, ID: core.MsgID{Origin: peer, Seq: 3}})
	ups := h.UpOfType(core.UStable)
	if len(ups) != 0 {
		if got := ups[len(ups)-1].Stability.Get(peer, h.Self()); got != 0 {
			t.Fatalf("matrix = %d after out-of-order ack, want 0", got)
		}
	}
	h.InjectDown(&core.Event{Type: core.DAck, ID: core.MsgID{Origin: peer, Seq: 1}})
	h.InjectDown(&core.Event{Type: core.DAck, ID: core.MsgID{Origin: peer, Seq: 2}})
	ups = h.UpOfType(core.UStable)
	if len(ups) == 0 {
		t.Fatal("no STABLE upcalls")
	}
	if got := ups[len(ups)-1].Stability.Get(peer, h.Self()); got != 3 {
		t.Fatalf("matrix = %d after filling the ack gap, want 3", got)
	}
}

func TestPeerAckVectorsMerge(t *testing.T) {
	h, peer := setup(t)
	// The peer gossips that it processed 5 of our messages.
	m := message.New(nil)
	// counts then ids then kind — mirror of wire encoding used by the
	// layer: PushCounts, PushIDList, kind.
	pushCounts(m, []uint64{5, 0})
	pushIDList(m, []core.EndpointID{h.Self(), peer})
	m.PushUint8(3) // kAcks
	h.InjectUp(&core.Event{Type: core.USend, Msg: m, Source: peer})
	ups := h.UpOfType(core.UStable)
	if len(ups) == 0 {
		t.Fatal("no STABLE upcall after peer gossip")
	}
	if got := ups[len(ups)-1].Stability.Get(h.Self(), peer); got != 5 {
		t.Fatalf("matrix[self,peer] = %d, want 5", got)
	}
}

func pushCounts(m *message.Message, counts []uint64) {
	for i := len(counts) - 1; i >= 0; i-- {
		m.PushUint64(counts[i])
	}
	m.PushUint32(uint32(len(counts)))
}

func pushIDList(m *message.Message, ids []core.EndpointID) {
	for i := len(ids) - 1; i >= 0; i-- {
		m.PushString(ids[i].Site)
		m.PushUint64(ids[i].Birth)
	}
	m.PushUint32(uint32(len(ids)))
}
