package frag_test

import (
	"bytes"
	"testing"

	"horus/internal/core"
	"horus/internal/layers/frag"
	"horus/internal/layertest"
	"horus/internal/message"
)

func TestSmallMessageSingleFragment(t *testing.T) {
	h := layertest.New(t, frag.NewWithSize(128))
	h.InjectDown(core.NewCast(message.New([]byte("small"))))
	if got := len(h.DownOfType(core.DCast)); got != 1 {
		t.Fatalf("%d fragments for a small message, want 1", got)
	}
	h.InjectUp(&core.Event{Type: core.UCast, Msg: h.LastDown().Msg.Clone(), Source: layertest.ID("p", 2)})
	if got := h.LastUp(); got == nil || string(got.Msg.Body()) != "small" {
		t.Fatalf("single-fragment round trip failed: %v", got)
	}
}

func TestLargeMessageSplitsAndReassembles(t *testing.T) {
	h := layertest.New(t, frag.NewWithSize(100))
	body := make([]byte, 1000)
	for i := range body {
		body[i] = byte(i)
	}
	m := message.New(body)
	m.PushString("hdr")
	h.InjectDown(core.NewCast(m))

	frags := h.DownOfType(core.DCast)
	if len(frags) < 10 {
		t.Fatalf("%d fragments, want >= 10", len(frags))
	}
	for _, f := range frags {
		if f.Msg.Len() > 100+1 { // +1 for the more-flag byte
			t.Fatalf("fragment exceeds limit: %d bytes", f.Msg.Len())
		}
	}
	src := layertest.ID("p", 2)
	for _, f := range frags {
		h.InjectUp(&core.Event{Type: core.UCast, Msg: f.Msg.Clone(), Source: src})
	}
	got := h.LastUp()
	if got == nil || got.Type != core.UCast {
		t.Fatal("reassembled message not delivered")
	}
	if got.Msg.PopString() != "hdr" {
		t.Fatal("upper header lost")
	}
	if !bytes.Equal(got.Msg.Body(), body) {
		t.Fatal("body corrupted in reassembly")
	}
}

func TestInterleavedSourcesReassembleIndependently(t *testing.T) {
	h := layertest.New(t, frag.NewWithSize(64))
	mkFrags := func(tag string) []*core.Event {
		h.Reset()
		h.InjectDown(core.NewCast(message.New(bytes.Repeat([]byte(tag), 100))))
		return h.DownOfType(core.DCast)
	}
	fa := mkFrags("A")
	fb := mkFrags("B")
	h.Reset()
	pa, pb := layertest.ID("pa", 2), layertest.ID("pb", 3)
	// Interleave the two sources' fragments.
	for i := 0; i < len(fa) || i < len(fb); i++ {
		if i < len(fa) {
			h.InjectUp(&core.Event{Type: core.UCast, Msg: fa[i].Msg.Clone(), Source: pa})
		}
		if i < len(fb) {
			h.InjectUp(&core.Event{Type: core.UCast, Msg: fb[i].Msg.Clone(), Source: pb})
		}
	}
	ups := h.UpOfType(core.UCast)
	if len(ups) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(ups))
	}
	for _, ev := range ups {
		want := byte('A')
		if ev.Source == pb {
			want = 'B'
		}
		if ev.Msg.Body()[0] != want {
			t.Errorf("message from %v has body %q", ev.Source, ev.Msg.Body()[:1])
		}
	}
}

func TestLostMessageClearsReassembly(t *testing.T) {
	h := layertest.New(t, frag.NewWithSize(64))
	h.InjectDown(core.NewCast(message.New(bytes.Repeat([]byte("x"), 200))))
	frags := h.DownOfType(core.DCast)
	src := layertest.ID("p", 2)
	// First fragment arrives, then the stream reports a loss.
	h.InjectUp(&core.Event{Type: core.UCast, Msg: frags[0].Msg.Clone(), Source: src})
	h.InjectUp(&core.Event{Type: core.ULostMessage, Source: src})
	// Remaining fragments of the damaged message arrive; reassembly
	// must not produce a half message.
	for _, f := range frags[1:] {
		h.InjectUp(&core.Event{Type: core.UCast, Msg: f.Msg.Clone(), Source: src})
	}
	for _, ev := range h.UpOfType(core.UCast) {
		if len(ev.Msg.Body()) == 200 {
			t.Fatal("partially lost message delivered as complete")
		}
	}
	if got := h.UpOfType(core.ULostMessage); len(got) != 1 {
		t.Fatalf("LOST_MESSAGE not passed up: %v", got)
	}
}

func TestTooSmallFragmentSizeFailsInit(t *testing.T) {
	h := layertest.New(t, frag.New)
	ep := h.Net.NewEndpoint("x")
	if _, err := ep.Join("g", core.StackSpec{frag.NewWithSize(4)}, nil); err == nil {
		t.Fatal("tiny fragment size accepted")
	}
}

func TestSubsetSendFragmentsKeepDests(t *testing.T) {
	h := layertest.New(t, frag.NewWithSize(64))
	dests := []core.EndpointID{layertest.ID("p", 2)}
	h.InjectDown(core.NewSend(message.New(bytes.Repeat([]byte("y"), 200)), dests))
	for i, f := range h.DownOfType(core.DSend) {
		if len(f.Dests) != 1 || f.Dests[0] != dests[0] {
			t.Fatalf("fragment %d lost destinations: %v", i, f.Dests)
		}
	}
	if n := len(h.DownOfType(core.DSend)); n < 3 {
		t.Fatalf("%d send fragments, want >= 3", n)
	}
}
