// Package frag implements the FRAG layer: fragmentation and reassembly
// of large messages (paper §7).
//
// Typical networks limit message size; when a message exceeds the
// maximum, FRAG splits it into fragments, pushing on each "a boolean
// value that indicates whether it is the last one or not" — the
// paper's one-bit header. FRAG depends on the FIFO ordering of the
// layer below it (NAK) for reassembly: fragments of one source arrive
// in order on their channel, so a fragment with the more-bit clear
// completes the current accumulation.
//
// The whole message content (upper-layer headers plus body) is
// rendered to wire form and split, so reassembly reconstructs the
// exact message including headers — and every message, fragmented or
// not, pays one marshal/unmarshal round trip. That cost is the ≈50 µs
// one-way latency the paper reports for this layer (§10), reproduced
// by BenchmarkFragOverhead.
//
// Properties: requires P3, P4, P10, P11; provides P12 (large messages).
package frag

import (
	"fmt"

	"horus/internal/core"
	"horus/internal/message"
)

// DefaultMaxFragment is the default maximum wire size per fragment.
const DefaultMaxFragment = 1024

// moreBit values.
const (
	lastFragment = 0
	moreToCome   = 1
)

// Frag is one FRAG layer instance.
type Frag struct {
	core.Base
	max   int
	cast  map[core.EndpointID][]byte // per-source reassembly, multicast channel
	send  map[core.EndpointID][]byte // per-source reassembly, unicast channel
	stats Stats
}

// Stats counts FRAG activity.
type Stats struct {
	Fragmented  int // messages that needed splitting
	Fragments   int // fragments sent
	Reassembled int // multi-fragment messages delivered
}

// New returns a FRAG layer with the default fragment size.
func New() core.Layer { return &Frag{max: DefaultMaxFragment} }

// NewWithSize returns a factory for FRAG layers with the given maximum
// fragment wire size.
func NewWithSize(max int) core.Factory {
	return func() core.Layer { return &Frag{max: max} }
}

// Name implements core.Layer.
func (f *Frag) Name() string { return "FRAG" }

// Stats returns a snapshot of the layer's counters.
func (f *Frag) Stats() Stats { return f.stats }

// Init implements core.Layer.
func (f *Frag) Init(c *core.Context) error {
	if err := f.Base.Init(c); err != nil {
		return err
	}
	if f.max < 16 {
		return fmt.Errorf("frag: maximum fragment size %d too small", f.max)
	}
	f.cast = make(map[core.EndpointID][]byte)
	f.send = make(map[core.EndpointID][]byte)
	return nil
}

// Down implements core.Layer.
func (f *Frag) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend:
		wire := ev.Msg.Marshal()
		if len(wire) <= f.max {
			m := message.New(wire)
			m.PushUint8(lastFragment)
			f.stats.Fragments++
			f.pass(ev, m)
			return
		}
		f.stats.Fragmented++
		for off := 0; off < len(wire); off += f.max {
			end := off + f.max
			more := uint8(moreToCome)
			if end >= len(wire) {
				end = len(wire)
				more = lastFragment
			}
			m := message.New(wire[off:end])
			m.PushUint8(more)
			f.stats.Fragments++
			f.pass(ev, m)
		}
	case core.DView:
		f.applyView(ev)
		f.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("FRAG: max=%d fragmented=%d fragments=%d reassembled=%d",
			f.max, f.stats.Fragmented, f.stats.Fragments, f.stats.Reassembled))
		f.Ctx.Down(ev)
	default:
		f.Ctx.Down(ev)
	}
}

// pass sends one fragment down with the same event shape as the
// original.
func (f *Frag) pass(orig *core.Event, m *message.Message) {
	f.Ctx.Down(&core.Event{Type: orig.Type, Msg: m, Dests: orig.Dests})
}

// Up implements core.Layer.
func (f *Frag) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend:
		more := ev.Msg.PopUint8()
		buf := f.bufFor(ev)
		acc := append(buf[ev.Source], ev.Msg.Body()...)
		if more == moreToCome {
			buf[ev.Source] = acc
			return
		}
		delete(buf, ev.Source)
		m, err := message.Unmarshal(acc)
		if err != nil {
			f.Ctx.Up(&core.Event{Type: core.USystemError, Source: ev.Source,
				Reason: "frag: reassembly produced malformed message: " + err.Error()})
			return
		}
		if len(acc) > f.max {
			f.stats.Reassembled++
		}
		ev.Msg = m
		f.Ctx.Up(ev)
	case core.ULostMessage:
		// A fragment in the middle of a sequence is gone for good;
		// the partial accumulation from that source can never
		// complete. Drop it and report the loss upward once.
		delete(f.cast, ev.Source)
		delete(f.send, ev.Source)
		f.Ctx.Up(ev)
	default:
		f.Ctx.Up(ev)
	}
}

// CompileCast implements core.CastCompiler for the single-fragment
// case. FRAG is a rewrap layer: the reference path marshals the whole
// message and wraps it in a fresh one, so the compiled frame folds the
// accumulated header into the body behind an engine-written length
// prefix, and FRAG's own header is the one-byte more-bit. The Fits
// gate reproduces the `len(wire) <= f.max` test against the would-be
// marshalled size; oversized casts fall back to the reference path and
// split there.
func (f *Frag) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{
		Width:  1,
		Rewrap: true,
		Fits: func(hdrLen, bodyLen int) bool {
			return 4+hdrLen+bodyLen <= f.max
		},
		Fill: func(fr *core.CastFrame) {
			fr.Own[0] = lastFragment
			f.stats.Fragments++
		},
	}, true
}

func (f *Frag) bufFor(ev *core.Event) map[core.EndpointID][]byte {
	if ev.Type == core.UCast {
		return f.cast
	}
	return f.send
}

// applyView drops reassembly buffers of members that left the view.
func (f *Frag) applyView(ev *core.Event) {
	if ev.View == nil {
		return
	}
	inView := make(map[core.EndpointID]bool, len(ev.View.Members))
	for _, m := range ev.View.Members {
		inView[m] = true
	}
	for src := range f.cast {
		if !inView[src] {
			delete(f.cast, src)
		}
	}
	for src := range f.send {
		if !inView[src] {
			delete(f.send, src)
		}
	}
}

// Transparent implements core.Skipper: FRAG acts on message-bearing
// events, view installs (to trim reassembly buffers), and stream-loss
// reports; everything else is skipped (§10 item 1).
func (f *Frag) Transparent(t core.EventType, down bool) bool {
	if down {
		switch t {
		case core.DCast, core.DSend, core.DView, core.DDump:
			return false
		}
		return true
	}
	switch t {
	case core.UCast, core.USend, core.ULostMessage:
		return false
	}
	return true
}
