package adapt_test

import (
	"fmt"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/adapt"
	"horus/internal/layertest"
	"horus/internal/message"
	"horus/internal/netsim"
)

func harness(t *testing.T, opts ...adapt.Option) (*layertest.Harness, *adapt.Adapt, core.EndpointID) {
	t.Helper()
	h := layertest.New(t, adapt.NewWith(opts...))
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer)
	layer := h.G.Focus("ADAPT").(*adapt.Adapt)
	return h, layer, peer
}

func cast(i int) *core.Event {
	return core.NewCast(message.New([]byte(fmt.Sprintf("m%d", i))))
}

func TestOpenIsPassThrough(t *testing.T) {
	h, layer, _ := harness(t)
	for i := 0; i < 5; i++ {
		h.InjectDown(cast(i))
	}
	if got := len(h.DownOfType(core.DCast)); got != 5 {
		t.Fatalf("%d casts launched while fully open, want 5", got)
	}
	if s := layer.Stats(); s.Throttled != 0 || s.Shed != 0 {
		t.Fatalf("open layer touched traffic: %+v", s)
	}
	if layer.Level() != 1 {
		t.Fatalf("level = %v, want 1", layer.Level())
	}
}

func TestSuspicionThrottlesAndRetractionRestores(t *testing.T) {
	h, layer, peer := harness(t)
	// The detector below reports the peer deep in suspicion.
	h.InjectUp(&core.Event{Type: core.USuspect, Source: peer, Phi: 9})
	// The signal must also keep travelling up.
	if got := len(h.UpOfType(core.USuspect)); got != 1 {
		t.Fatalf("SUSPECT upcalls passed through = %d, want 1", got)
	}
	for i := 0; i < 10; i++ {
		h.InjectDown(cast(i))
	}
	if got := len(h.DownOfType(core.DCast)); got != 0 {
		t.Fatalf("%d casts launched against a φ=9 destination, want 0 before ticks", got)
	}
	if layer.Stats().Throttled != 10 {
		t.Fatalf("Throttled = %d, want 10", layer.Stats().Throttled)
	}
	h.Run(60 * time.Millisecond)
	during := len(h.DownOfType(core.DCast))
	if during == 10 {
		t.Fatal("all casts launched while throttled; expected pacing")
	}
	// The peer speaks again: the detector retracts.
	h.InjectUp(&core.Event{Type: core.USuspect, Source: peer, Phi: 0})
	h.Run(2 * time.Second)
	got := h.DownOfType(core.DCast)
	if len(got) != 10 {
		t.Fatalf("%d casts after retraction and recovery, want 10", len(got))
	}
	for i, ev := range got {
		if want := fmt.Sprintf("m%d", i); string(ev.Msg.Body()) != want {
			t.Fatalf("pacing reordered casts: %q at position %d", ev.Msg.Body(), i)
		}
	}
	if layer.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", layer.QueueLen())
	}
}

func TestViewRemovalStopsThrottling(t *testing.T) {
	h, layer, peer := harness(t)
	h.InjectUp(&core.Event{Type: core.USuspect, Source: peer, Phi: 9})
	for i := 0; i < 6; i++ {
		h.InjectDown(cast(i))
	}
	if len(h.DownOfType(core.DCast)) != 0 {
		t.Fatal("casts launched against a suspected destination")
	}
	// Membership excludes the suspect: its φ is moot, full rate returns.
	other := layertest.ID("q", 3)
	h.InstallView(h.Self(), other)
	h.Run(2 * time.Second)
	if got := len(h.DownOfType(core.DCast)); got != 6 {
		t.Fatalf("%d casts after the suspect left the view, want 6", got)
	}
	if layer.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", layer.QueueLen())
	}
}

func TestShedsLowestPriorityFirst(t *testing.T) {
	h, layer, peer := harness(t, adapt.WithQueueCap(4))
	h.InjectUp(&core.Event{Type: core.USuspect, Source: peer, Phi: 9})
	prios := []int{3, 0, 2, 3, 1}
	for i, p := range prios {
		ev := cast(i)
		ev.Priority = p
		h.InjectDown(ev)
	}
	if s := layer.Stats(); s.Shed != 1 {
		t.Fatalf("Shed = %d, want 1 (cap 4, 5 queued)", s.Shed)
	}
	if got := len(h.UpOfType(core.ULostMessage)); got != 1 {
		t.Fatalf("LOST_MESSAGE upcalls = %d, want 1", got)
	}
	// Recover and drain: the priority-0 cast (m1) must be the missing one.
	h.InjectUp(&core.Event{Type: core.USuspect, Source: peer, Phi: 0})
	h.Run(2 * time.Second)
	var bodies []string
	for _, ev := range h.DownOfType(core.DCast) {
		bodies = append(bodies, string(ev.Msg.Body()))
	}
	want := []string{"m0", "m2", "m3", "m4"}
	if len(bodies) != len(want) {
		t.Fatalf("launched %v, want %v", bodies, want)
	}
	for i := range want {
		if bodies[i] != want[i] {
			t.Fatalf("launched %v, want %v", bodies, want)
		}
	}
}

func TestCollapseFeedbackDecreasesAndRecovers(t *testing.T) {
	h, layer, _ := harness(t)
	// Give the harness host a tight egress budget and burn through it
	// with raw traffic to a second attached endpoint: the fabric ledger
	// the layer polls is the real one.
	sink := h.Net.NewEndpoint("sink")
	h.Net.SetHost(h.Self(), netsim.Host{EgressBudget: 1000, EgressQueue: 200})
	frame := make([]byte, 100)
	for i := 0; i < 30; i++ {
		h.Net.Send(h.Self(), "test", []core.EndpointID{sink.ID()}, frame)
	}
	if fb := h.Net.EgressFeedback(h.Self()); fb.CollapseDropped == 0 {
		t.Fatalf("test setup: expected collapse drops, got %+v", fb)
	}
	h.Run(15 * time.Millisecond) // one control tick sees the drops
	if layer.Level() >= 1 {
		t.Fatalf("level = %v after collapse drops, want < 1", layer.Level())
	}
	if layer.Stats().Decreases == 0 {
		t.Fatal("no multiplicative decrease recorded")
	}
	// Throttled now: new casts queue instead of passing through.
	h.InjectDown(cast(0))
	if layer.Stats().Throttled != 1 {
		t.Fatalf("Throttled = %d, want 1", layer.Stats().Throttled)
	}
	// Quiet network: additive increase restores full rate and drains.
	h.Run(3 * time.Second)
	if layer.Level() != 1 {
		t.Fatalf("level = %v after recovery, want 1", layer.Level())
	}
	if got := len(h.DownOfType(core.DCast)); got != 1 {
		t.Fatalf("%d casts drained after recovery, want 1", got)
	}
}
