// Package adapt implements the ADAPT layer: an adaptive load-shedding
// regulator that closes the control loop between failure detection and
// congestion. It is the first consumer of the two feedback channels
// this codebase threads into the composition framework beyond the
// paper's Table 2: graded SUSPECT upcalls from the φ-accrual detector
// below it, and the fabric's per-host egress ledger surfaced through
// core.Context.EgressFeedback.
//
// Placement: directly below the application, above FC (and everything
// else) — ADAPT regulates application traffic only, never the control
// traffic of the layers beneath it. Its control law is AIMD on an
// openness level o ∈ [minLevel, 1]:
//
//   - Multiplicative decrease (×1/2) when the local egress ledger
//     shows new CollapseDropped frames or a backlog past the high
//     water mark, or when the worst φ among current view members
//     reaches phiHigh — congestion and suspected-peer pressure are
//     treated as the same signal, because a member drowning in our
//     retransmissions looks exactly like a member about to fail.
//   - Additive increase (+step per tick) back toward 1 when the
//     bucket is drained, no new drops appeared, and every member's φ
//     is below phiLow.
//
// While o = 1 and nothing is queued, casts pass through untouched —
// the layer costs one skip-table lookup. While o < 1, casts are paced
// at o×burst per tick through a bounded queue; when the queue is full
// (or the ledger shows collapse drops) the lowest-Priority queued
// casts are shed with a LOST_MESSAGE upcall, so cheap traffic is
// sacrificed to keep urgent traffic's latency bounded instead of
// letting the fabric collapse on all of it — graceful degradation.
//
// Suspicion throttles per destination: a multicast is paced by the
// worst (most suspected) member of the view it addresses, a send by
// the worst of its explicit destinations. A member the view drops
// stops counting immediately.
//
// Properties: requires reliable FIFO beneath it (P3+P4+P11) so that
// what it admits is actually delivered — shedding is only meaningful
// when not-shedding means delivery; provides nothing new; inherits
// everything (pacing reorders nothing: admitted casts leave in
// admission order).
package adapt

import (
	"fmt"
	"time"

	"horus/internal/core"
)

// Defaults; override with Options.
const (
	defaultTick     = 10 * time.Millisecond
	defaultQueueCap = 64
	defaultBurst    = 4.0 // casts per tick at o=1 while paced
	defaultMinLevel = 0.05
	defaultPhiLow   = 2.0  // full rate below this φ
	defaultPhiHigh  = 8.0  // minimum rate at/above this φ
	defaultBacklog  = 2048 // egress backlog (bytes) forcing a decrease

	decreaseFactor = 0.5
	increaseStep   = 0.05
)

// Option configures the layer.
type Option func(*Adapt)

// WithTick sets the control-loop interval: feedback is polled, the
// AIMD level adjusted, and the paced queue drained once per tick.
func WithTick(d time.Duration) Option { return func(a *Adapt) { a.tickEvery = d } }

// WithQueueCap bounds the paced queue; beyond it the lowest-priority
// cast is shed.
func WithQueueCap(n int) Option { return func(a *Adapt) { a.queueCap = n } }

// WithMinLevel sets the openness floor the multiplicative decrease
// cannot cross — the guaranteed trickle that keeps probing the fabric.
func WithMinLevel(l float64) Option { return func(a *Adapt) { a.minLevel = l } }

// WithPhiBands sets the suspicion thresholds: full rate below low,
// minimum rate at or above high, linear in between.
func WithPhiBands(low, high float64) Option {
	return func(a *Adapt) { a.phiLow, a.phiHigh = low, high }
}

// WithBurst sets how many casts may launch per tick at full openness
// while pacing is engaged.
func WithBurst(b float64) Option { return func(a *Adapt) { a.burst = b } }

// WithBacklogLimit sets the egress-backlog high water mark (bytes)
// that forces a multiplicative decrease even before frames are
// dropped.
func WithBacklogLimit(b int) Option { return func(a *Adapt) { a.backlogHigh = b } }

// New returns an ADAPT layer with default configuration.
func New() core.Layer { return newAdapt() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		a := newAdapt()
		for _, o := range opts {
			o(a)
		}
		return a
	}
}

func newAdapt() *Adapt {
	return &Adapt{
		tickEvery:   defaultTick,
		queueCap:    defaultQueueCap,
		burst:       defaultBurst,
		minLevel:    defaultMinLevel,
		phiLow:      defaultPhiLow,
		phiHigh:     defaultPhiHigh,
		backlogHigh: defaultBacklog,
		level:       1,
	}
}

// Stats counts ADAPT activity.
type Stats struct {
	Shed      int // casts dropped (queue overflow or collapse purge)
	Throttled int // casts that waited in the paced queue
	Decreases int // multiplicative decreases of the level
	Increases int // additive increases of the level
}

// Adapt is one ADAPT layer instance.
type Adapt struct {
	core.Base

	tickEvery   time.Duration
	queueCap    int
	burst       float64
	minLevel    float64
	phiLow      float64
	phiHigh     float64
	backlogHigh int

	members []core.EndpointID
	phi     map[core.EndpointID]float64

	level     float64
	credit    float64
	queue     []*core.Event
	lastDrops uint64
	hasLedger bool

	tickCancel func()
	destroyed  bool
	stats      Stats
}

// Name implements core.Layer.
func (a *Adapt) Name() string { return "ADAPT" }

// Stats returns a snapshot of the layer's counters.
func (a *Adapt) Stats() Stats { return a.stats }

// Level returns the current AIMD openness level (for tests, dumps,
// and the chaos CLI).
func (a *Adapt) Level() float64 { return a.level }

// QueueLen returns the number of casts currently paced.
func (a *Adapt) QueueLen() int { return len(a.queue) }

// Quiescent implements core.Quiescer for the SWITCH reconfiguration
// protocol: the sending side is quiescent when the paced queue is
// empty; the layer buffers nothing on the delivery side.
func (a *Adapt) Quiescent(down bool) bool {
	return !down || len(a.queue) == 0
}

// Init implements core.Layer.
func (a *Adapt) Init(c *core.Context) error {
	if err := a.Base.Init(c); err != nil {
		return err
	}
	a.phi = make(map[core.EndpointID]float64)
	if a.tickEvery > 0 {
		a.tickCancel = c.SetTimer(a.tickEvery, a.tick)
	}
	return nil
}

// Down implements core.Layer.
func (a *Adapt) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend:
		a.admit(ev)
	case core.DView:
		a.applyView(ev.View)
		a.Ctx.Down(ev)
	case core.DDestroy:
		a.destroyed = true
		if a.tickCancel != nil {
			a.tickCancel()
			a.tickCancel = nil
		}
		a.queue = nil
		a.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, "ADAPT: "+a.dumpLine())
		a.Ctx.Down(ev)
	default:
		a.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (a *Adapt) Up(ev *core.Event) {
	switch ev.Type {
	case core.USuspect:
		// Track the graded suspicion and pass it on — applications and
		// the failure service above still want the signal.
		a.phi[ev.Source] = ev.Phi
		a.Ctx.Up(ev)
	case core.UView:
		a.applyView(ev.View)
		a.Ctx.Up(ev)
	default:
		a.Ctx.Up(ev)
	}
}

// admit gates one application message: pass-through when fully open
// with nothing queued, otherwise into the bounded paced queue, from
// which tick launches at the controlled rate and overflow sheds the
// cheapest entry.
func (a *Adapt) admit(ev *core.Event) {
	if a.openness(ev) >= 1 && len(a.queue) == 0 {
		a.Ctx.Down(ev)
		return
	}
	a.stats.Throttled++
	a.queue = append(a.queue, ev)
	if len(a.queue) > a.queueCap {
		a.shedOne()
	}
}

// shedOne drops the lowest-priority queued cast (earliest among
// equals) and reports it as an unrecoverable loss, the honest verdict:
// the layer chose this message as the cheapest to sacrifice.
func (a *Adapt) shedOne() {
	if len(a.queue) == 0 {
		return
	}
	min := 0
	for i, ev := range a.queue {
		if ev.Priority < a.queue[min].Priority {
			min = i
		}
	}
	victim := a.queue[min]
	a.queue = append(a.queue[:min], a.queue[min+1:]...)
	a.stats.Shed++
	a.Ctx.Tracef("adapt %s: shed cast (priority %d, %d queued)",
		a.Ctx.Self(), victim.Priority, len(a.queue))
	a.Ctx.Up(&core.Event{
		Type:   core.ULostMessage,
		Reason: "adapt: shed under overload",
	})
}

// openness is the current admission rate for one message: the AIMD
// level scaled by the suspicion factor of the message's destinations
// (the view for a cast, Dests for a send) — the most suspected
// destination governs.
func (a *Adapt) openness(ev *core.Event) float64 {
	dests := a.members
	if ev != nil && ev.Type == core.DSend && len(ev.Dests) > 0 {
		dests = ev.Dests
	}
	var worst float64
	for _, m := range dests {
		if m == a.Ctx.Self() {
			continue
		}
		if p := a.phi[m]; p > worst {
			worst = p
		}
	}
	return a.level * a.phiFactor(worst)
}

// phiFactor maps a suspicion level onto a rate multiplier: 1 below
// phiLow, minLevel at or past phiHigh, linear in between.
func (a *Adapt) phiFactor(phi float64) float64 {
	switch {
	case phi < a.phiLow:
		return 1
	case phi >= a.phiHigh:
		return a.minLevel
	default:
		frac := (phi - a.phiLow) / (a.phiHigh - a.phiLow)
		return 1 - frac*(1-a.minLevel)
	}
}

// applyView adopts the new membership: suspicion of members no longer
// in the view stops throttling immediately (exclusion is the binary
// verdict; the graded signal is moot).
func (a *Adapt) applyView(v *core.View) {
	if v == nil {
		return
	}
	a.members = append([]core.EndpointID(nil), v.Members...)
	alive := make(map[core.EndpointID]bool, len(v.Members))
	for _, m := range v.Members {
		alive[m] = true
	}
	for e := range a.phi {
		if !alive[e] {
			delete(a.phi, e)
		}
	}
}

// tick is the control loop: poll the egress ledger, adjust the AIMD
// level, purge the queue after collapse drops, and drain what the
// current rate affords.
func (a *Adapt) tick() {
	if a.destroyed {
		return
	}
	a.tickCancel = a.Ctx.SetTimer(a.tickEvery, a.tick)

	var worst float64
	for _, m := range a.members {
		if m == a.Ctx.Self() {
			continue
		}
		if p := a.phi[m]; p > worst {
			worst = p
		}
	}

	fb, ok := a.Ctx.EgressFeedback()
	a.hasLedger = ok
	newDrops := ok && fb.CollapseDropped > a.lastDrops
	backlogged := ok && fb.BacklogBytes >= a.backlogHigh
	switch {
	case newDrops || backlogged || worst >= a.phiHigh:
		if a.level > a.minLevel {
			a.level *= decreaseFactor
			if a.level < a.minLevel {
				a.level = a.minLevel
			}
			a.stats.Decreases++
			a.Ctx.Tracef("adapt %s: decrease to %.3f (drops=%v backlog=%v φ=%.1f)",
				a.Ctx.Self(), a.level, newDrops, backlogged, worst)
		}
	// Increase needs a draining bucket, not an idle one: steady
	// control traffic keeps a healthy bucket busy at almost every poll
	// instant, so demanding an exactly-empty backlog would latch the
	// level at the floor forever.
	case (!ok || fb.BacklogBytes < a.backlogHigh/4) && worst < a.phiLow:
		if a.level < 1 {
			a.level += increaseStep
			if a.level > 1 {
				a.level = 1
			}
			a.stats.Increases++
		}
	}
	if ok {
		a.lastDrops = fb.CollapseDropped
	}

	// The fabric already dropped frames on the floor: the queue is
	// stale demand. Purge it to half capacity, cheapest first, rather
	// than feeding a collapsing bucket.
	if newDrops {
		for len(a.queue) > a.queueCap/2 {
			a.shedOne()
		}
	}

	// Drain at the controlled rate. Openness is evaluated per queued
	// message (sends carry their own destinations); credit accumulates
	// fractional launches across ticks and is capped at one burst so
	// an idle stretch cannot bank an arbitrary spike.
	if len(a.queue) > 0 {
		a.credit += a.openness(a.queue[0]) * a.burst
		if a.credit > a.burst {
			a.credit = a.burst
		}
		for len(a.queue) > 0 && (a.credit >= 1 || a.openness(a.queue[0]) >= 1) {
			ev := a.queue[0]
			a.queue = a.queue[1:]
			if a.openness(ev) < 1 {
				a.credit--
			}
			a.Ctx.Down(ev)
		}
	} else {
		a.credit = 0
	}
}

// Transparent implements core.Skipper: the layer acts on application
// traffic, views, suspicion, and lifecycle events.
func (a *Adapt) Transparent(t core.EventType, down bool) bool {
	if down {
		switch t {
		case core.DCast, core.DSend, core.DView, core.DDestroy, core.DDump:
			return false
		}
		return true
	}
	switch t {
	case core.USuspect, core.UView:
		return false
	}
	return true
}

func (a *Adapt) dumpLine() string {
	ledger := "no ledger"
	if a.hasLedger {
		ledger = "ledger ok"
	}
	return fmt.Sprintf("level=%.3f queued=%d shed=%d throttled=%d dec=%d inc=%d (%s)",
		a.level, len(a.queue), a.stats.Shed, a.stats.Throttled,
		a.stats.Decreases, a.stats.Increases, ledger)
}
