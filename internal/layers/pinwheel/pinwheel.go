// Package pinwheel implements the PINWHEEL layer: an alternative
// provider of stability information (property P14).
//
// Where STABLE has every member gossip its ack vector to every other
// member (n messages per period, matrix converges in one hop),
// PINWHEEL rotates a single token around the view like the arms of a
// pinwheel. The token carries the full stability matrix; each member
// folds in its local acknowledgements, reports changes upward, and
// passes the token to the next member in rank order after a hold
// period. One message per period total, at the cost of O(n) periods
// for information to reach everyone — the trade the paper alludes to
// when it says an application can choose "whether STABLE or PINWHEEL
// will be optimal" (§10). BenchmarkStabilityProtocols quantifies it.
//
// Properties: requires P3, P8, P9, P10, P15; provides P14.
package pinwheel

import (
	"fmt"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/wire"
)

// Wire kinds.
const (
	kData  = 1 // stamped multicast {seq}
	kSend  = 2 // subset send pass-through
	kToken = 3 // rotating matrix token {members, rows...}
)

const defaultHold = 25 * time.Millisecond

// Option configures the layer.
type Option func(*Pinwheel)

// WithHold sets how long each member holds the token before passing
// it on.
func WithHold(d time.Duration) Option { return func(p *Pinwheel) { p.hold = d } }

// New returns a PINWHEEL layer with default configuration.
func New() core.Layer { return newPinwheel() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		p := newPinwheel()
		for _, o := range opts {
			o(p)
		}
		return p
	}
}

func newPinwheel() *Pinwheel {
	return &Pinwheel{hold: defaultHold}
}

// Pinwheel is one PINWHEEL layer instance.
type Pinwheel struct {
	core.Base

	view    *core.View
	sendSeq uint64

	ackPrefix map[core.EndpointID]uint64
	ackSparse map[core.MsgID]bool
	matrix    *core.StabilityMatrix

	holding    bool
	hold       time.Duration
	holdCancel func()
	watchdog   func()
	destroyed  bool
	stats      Stats
}

// Stats counts PINWHEEL activity.
type Stats struct {
	Stamped     int
	AcksApplied int
	TokenSent   int
	Updates     int
	Regenerated int // tokens recreated by the watchdog
}

// Name implements core.Layer.
func (p *Pinwheel) Name() string { return "PINWHEEL" }

// Stats returns a snapshot of the layer's counters.
func (p *Pinwheel) Stats() Stats { return p.stats }

// Matrix returns the current stability matrix (nil before the first
// view).
func (p *Pinwheel) Matrix() *core.StabilityMatrix { return p.matrix }

// Init implements core.Layer.
func (p *Pinwheel) Init(c *core.Context) error {
	if err := p.Base.Init(c); err != nil {
		return err
	}
	p.ackPrefix = make(map[core.EndpointID]uint64)
	p.ackSparse = make(map[core.MsgID]bool)
	return nil
}

// Down implements core.Layer.
func (p *Pinwheel) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		p.sendSeq++
		ev.Msg.PushUint64(p.sendSeq)
		ev.Msg.PushUint8(kData)
		p.stats.Stamped++
		p.Ctx.Down(ev)
	case core.DSend:
		ev.Msg.PushUint8(kSend)
		p.Ctx.Down(ev)
	case core.DAck:
		p.applyAck(ev.ID)
	case core.DStable:
		// Garbage-collection hint; nothing retained here.
	case core.DDestroy:
		p.destroyed = true
		p.cancelTimers()
		p.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("PINWHEEL: sent=%d tokens=%d updates=%d regen=%d",
			p.sendSeq, p.stats.TokenSent, p.stats.Updates, p.stats.Regenerated))
		p.Ctx.Down(ev)
	default:
		p.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (p *Pinwheel) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		kind := ev.Msg.PopUint8()
		switch kind {
		case kData:
			seq := ev.Msg.PopUint64()
			ev.ID = core.MsgID{Origin: ev.Source, Seq: seq}
			p.Ctx.Up(ev)
		case kToken:
			p.receiveToken(ev)
		}
	case core.USend:
		kind := ev.Msg.PopUint8()
		switch kind {
		case kSend:
			p.Ctx.Up(ev)
		case kToken:
			p.receiveToken(ev)
		}
	case core.UView:
		p.applyView(ev.View)
		p.Ctx.Up(ev)
	default:
		p.Ctx.Up(ev)
	}
}

func (p *Pinwheel) applyAck(id core.MsgID) {
	if id.Origin.IsZero() || id.Seq == 0 {
		return
	}
	if id.Seq <= p.ackPrefix[id.Origin] || p.ackSparse[id] {
		return
	}
	p.stats.AcksApplied++
	p.ackSparse[id] = true
	for p.ackSparse[core.MsgID{Origin: id.Origin, Seq: p.ackPrefix[id.Origin] + 1}] {
		p.ackPrefix[id.Origin]++
		delete(p.ackSparse, core.MsgID{Origin: id.Origin, Seq: p.ackPrefix[id.Origin]})
	}
	p.foldLocal()
}

// foldLocal merges our own acks into the matrix, reporting changes.
func (p *Pinwheel) foldLocal() {
	if p.matrix == nil {
		return
	}
	changed := false
	for origin, count := range p.ackPrefix {
		if p.matrix.Get(origin, p.Ctx.Self()) < count {
			p.matrix.Set(origin, p.Ctx.Self(), count)
			changed = true
		}
	}
	if changed {
		p.stats.Updates++
		p.Ctx.Up(&core.Event{Type: core.UStable, Stability: p.matrix.Clone()})
	}
}

// receiveToken merges the rotating matrix and schedules the pass-on.
func (p *Pinwheel) receiveToken(ev *core.Event) {
	members := wire.PopIDList(ev.Msg)
	if p.matrix == nil {
		return
	}
	incoming := core.NewStabilityMatrix(members)
	for i := range members {
		row := wire.PopCounts(ev.Msg)
		if len(row) != len(members) {
			return
		}
		copy(incoming.Acked[i], row)
	}
	changed := false
	for i, origin := range members {
		for j, member := range members {
			if p.matrix.Get(origin, member) < incoming.Acked[i][j] {
				p.matrix.Set(origin, member, incoming.Acked[i][j])
				changed = true
			}
		}
	}
	p.foldLocal()
	if changed {
		p.stats.Updates++
		p.Ctx.Up(&core.Event{Type: core.UStable, Stability: p.matrix.Clone()})
	}
	p.scheduleHold()
}

// scheduleHold arms the pass-on timer.
func (p *Pinwheel) scheduleHold() {
	if p.holding {
		return
	}
	p.holding = true
	p.holdCancel = p.Ctx.SetTimer(p.hold, func() {
		p.holdCancel = nil
		p.holding = false
		p.passToken()
	})
}

// passToken sends the matrix to the next member in rank order.
func (p *Pinwheel) passToken() {
	if p.destroyed || p.view == nil || p.view.Size() < 2 || p.matrix == nil {
		return
	}
	myRank := p.view.Rank(p.Ctx.Self())
	if myRank < 0 {
		return
	}
	next := p.view.Members[(myRank+1)%p.view.Size()]
	m := message.New(nil)
	for i := len(p.matrix.Members) - 1; i >= 0; i-- {
		wire.PushCounts(m, p.matrix.Acked[i])
	}
	wire.PushIDList(m, p.matrix.Members)
	m.PushUint8(kToken)
	p.stats.TokenSent++
	p.Ctx.Down(&core.Event{Type: core.DSend, Msg: m, Dests: []core.EndpointID{next}})
	p.armWatchdog()
}

// armWatchdog regenerates a lost token. Only the lowest-ranked member
// regenerates, so loss cannot multiply tokens (modulo a brief overlap
// if the old token was merely slow, which is harmless: matrices are
// merged monotonically).
func (p *Pinwheel) armWatchdog() {
	if p.view == nil || p.view.Rank(p.Ctx.Self()) != 0 {
		return
	}
	if p.watchdog != nil {
		p.watchdog()
	}
	timeout := time.Duration(p.view.Size()*3) * p.hold
	p.watchdog = p.Ctx.SetTimer(timeout, func() {
		p.watchdog = nil
		if p.destroyed || p.holding {
			return
		}
		p.stats.Regenerated++
		p.passToken()
	})
}

// applyView resets the matrix over the new membership and restarts the
// rotation from the lowest-ranked member.
func (p *Pinwheel) applyView(v *core.View) {
	p.view = v
	old := p.matrix
	p.matrix = core.NewStabilityMatrix(v.Members)
	if old != nil {
		p.matrix.MergeFrom(old)
	}
	p.foldLocal()
	p.cancelTimers()
	p.holding = false
	if v.Size() >= 2 && v.Rank(p.Ctx.Self()) == 0 {
		p.holdCancel = p.Ctx.SetTimer(p.hold, func() {
			p.holdCancel = nil
			p.passToken()
		})
	}
}

func (p *Pinwheel) cancelTimers() {
	if p.holdCancel != nil {
		p.holdCancel()
		p.holdCancel = nil
	}
	if p.watchdog != nil {
		p.watchdog()
		p.watchdog = nil
	}
}
