package pinwheel_test

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/pinwheel"
	"horus/internal/layertest"
	"horus/internal/message"
)

func setup(t *testing.T) (*layertest.Harness, core.EndpointID) {
	t.Helper()
	h := layertest.New(t, pinwheel.NewWith(pinwheel.WithHold(10*time.Millisecond)))
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer) // self is rank 0: first token holder
	h.Reset()
	return h, peer
}

func TestRankZeroStartsRotation(t *testing.T) {
	h, peer := setup(t)
	h.Run(50 * time.Millisecond)
	var tokens int
	for _, ev := range h.DownOfType(core.DSend) {
		m := ev.Msg.Clone()
		if m.PopUint8() == 3 { // kToken
			tokens++
			if ev.Dests[0] != peer {
				t.Fatalf("token sent to %v, want next in rank %v", ev.Dests, peer)
			}
		}
	}
	if tokens == 0 {
		t.Fatal("rank 0 never launched the token")
	}
}

func TestStampsAndIdentifiesLikeStable(t *testing.T) {
	h, peer := setup(t)
	h.InjectDown(core.NewCast(message.New([]byte("x"))))
	sent := h.LastDown()
	kind := sent.Msg.PopUint8()
	seq := sent.Msg.PopUint64()
	if kind != 1 || seq != 1 {
		t.Fatalf("kind=%d seq=%d", kind, seq)
	}
	m := message.New([]byte("in"))
	m.PushUint64(4)
	m.PushUint8(1)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	if got := h.LastUp(); got.ID.Seq != 4 || got.ID.Origin != peer {
		t.Fatalf("ID = %v", got.ID)
	}
}

func TestLocalAcksReportStable(t *testing.T) {
	h, peer := setup(t)
	m := message.New([]byte("in"))
	m.PushUint64(1)
	m.PushUint8(1)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	h.InjectDown(&core.Event{Type: core.DAck, ID: core.MsgID{Origin: peer, Seq: 1}})
	ups := h.UpOfType(core.UStable)
	if len(ups) == 0 {
		t.Fatal("no STABLE upcall after local ack")
	}
	if got := ups[len(ups)-1].Stability.Get(peer, h.Self()); got != 1 {
		t.Fatalf("matrix = %d", got)
	}
}

func TestIncomingTokenMergesAndPassesOn(t *testing.T) {
	h, peer := setup(t)
	// Build a token the way a peer would: rows (reverse), members,
	// kind. Claim the peer acked 9 of our messages.
	m := message.New(nil)
	// rows pushed in reverse order of members [self, peer]:
	pushCounts(m, []uint64{0, 0}) // row for peer's stream
	pushCounts(m, []uint64{0, 9}) // row for our stream: peer processed 9
	pushIDList(m, []core.EndpointID{h.Self(), peer})
	m.PushUint8(3)
	h.InjectUp(&core.Event{Type: core.USend, Msg: m, Source: peer})

	ups := h.UpOfType(core.UStable)
	if len(ups) == 0 {
		t.Fatal("no STABLE after token merge")
	}
	if got := ups[len(ups)-1].Stability.Get(h.Self(), peer); got != 9 {
		t.Fatalf("merged matrix = %d, want 9", got)
	}
	// After the hold period the token moves on.
	h.Reset()
	h.Run(30 * time.Millisecond)
	var tokens int
	for _, ev := range h.DownOfType(core.DSend) {
		if ev.Msg.Clone().PopUint8() == 3 {
			tokens++
		}
	}
	if tokens == 0 {
		t.Fatal("token parked forever")
	}
}

func pushCounts(m *message.Message, counts []uint64) {
	for i := len(counts) - 1; i >= 0; i-- {
		m.PushUint64(counts[i])
	}
	m.PushUint32(uint32(len(counts)))
}

func pushIDList(m *message.Message, ids []core.EndpointID) {
	for i := len(ids) - 1; i >= 0; i-- {
		m.PushString(ids[i].Site)
		m.PushUint64(ids[i].Birth)
	}
	m.PushUint32(uint32(len(ids)))
}
