package safe_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/safe"
	"horus/internal/layertest"
	"horus/internal/message"
)

func setup(t *testing.T) (*layertest.Harness, core.EndpointID, core.EndpointID) {
	t.Helper()
	h := layertest.New(t, safe.New)
	p1 := layertest.ID("p1", 2)
	p2 := layertest.ID("p2", 3)
	h.InstallView(h.Self(), p1, p2)
	h.Reset()
	return h, p1, p2
}

// identified builds a delivery carrying the MsgID a stability layer
// would attach.
func identified(body string, src core.EndpointID, seq uint64) *core.Event {
	return &core.Event{Type: core.UCast, Msg: message.New([]byte(body)),
		Source: src, ID: core.MsgID{Origin: src, Seq: seq}}
}

// matrixWith builds a stability matrix where origin's messages up to n
// are processed by everyone.
func matrixWith(members []core.EndpointID, origin core.EndpointID, n uint64) *core.StabilityMatrix {
	m := core.NewStabilityMatrix(members)
	for _, member := range members {
		m.Set(origin, member, n)
	}
	return m
}

func TestHoldsUntilStable(t *testing.T) {
	h, p1, p2 := setup(t)
	h.InjectUp(identified("m1", p1, 1))
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatal("delivered before stability")
	}
	// SAFE acknowledges on the application's behalf.
	if acks := h.DownOfType(core.DAck); len(acks) != 1 || acks[0].ID.Seq != 1 {
		t.Fatalf("acks = %v", acks)
	}
	members := []core.EndpointID{h.Self(), p1, p2}
	h.InjectUp(&core.Event{Type: core.UStable, Stability: matrixWith(members, p1, 1)})
	got := h.UpOfType(core.UCast)
	if len(got) != 1 || string(got[0].Msg.Body()) != "m1" {
		t.Fatalf("delivered %v after stability", got)
	}
}

func TestPartialStabilityWithholds(t *testing.T) {
	h, p1, p2 := setup(t)
	h.InjectUp(identified("m1", p1, 1))
	members := []core.EndpointID{h.Self(), p1, p2}
	m := core.NewStabilityMatrix(members)
	m.Set(p1, h.Self(), 1)
	m.Set(p1, p1, 1) // p2 has not processed it
	h.InjectUp(&core.Event{Type: core.UStable, Stability: m})
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatal("delivered while one member lags (not safe)")
	}
}

func TestReleasesInSeqOrderPerOrigin(t *testing.T) {
	h, p1, p2 := setup(t)
	h.InjectUp(identified("m2", p1, 2))
	h.InjectUp(identified("m1", p1, 1))
	members := []core.EndpointID{h.Self(), p1, p2}
	h.InjectUp(&core.Event{Type: core.UStable, Stability: matrixWith(members, p1, 2)})
	got := h.UpOfType(core.UCast)
	if len(got) != 2 || string(got[0].Msg.Body()) != "m1" || string(got[1].Msg.Body()) != "m2" {
		t.Fatalf("release order wrong: %v", got)
	}
}

func TestViewChangeFlushesHeld(t *testing.T) {
	h, p1, p2 := setup(t)
	h.InjectUp(identified("held", p1, 1))
	v := core.NewView(core.ViewID{Seq: 2, Coord: h.Self()}, "test",
		[]core.EndpointID{h.Self(), p2})
	h.InjectUp(&core.Event{Type: core.UView, View: v})
	got := h.UpOfType(core.UCast)
	if len(got) != 1 || string(got[0].Msg.Body()) != "held" {
		t.Fatalf("view change did not release held messages: %v", got)
	}
}

func TestCastWithoutIdentityErrors(t *testing.T) {
	h, p1, _ := setup(t)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: message.New([]byte("anon")), Source: p1})
	if got := h.UpOfType(core.USystemError); len(got) != 1 {
		t.Fatalf("no SYSTEM_ERROR without a stability layer below: %v", got)
	}
}
