// Package safe implements ORDER(safe): safe delivery (property P7).
//
// A safely delivered message is one that every surviving member of the
// view is known to have received before any member's application sees
// it — the delivery discipline databases want before applying an
// update. SAFE sits above a stability layer (STABLE or PINWHEEL,
// property P14): it acknowledges each arriving multicast on behalf of
// the application, buffers it, and releases it upward only once the
// stability matrix shows the message reached every member.
//
// Stacks using SAFE give the ack downcall to this layer; applications
// above it get safe delivery instead of application-defined stability.
//
// Properties: requires P3, P8, P9, P14, P15; provides P7.
package safe

import (
	"fmt"
	"sort"

	"horus/internal/core"
)

// Safe is one ORDER(safe) layer instance.
type Safe struct {
	core.Base
	view  *core.View
	held  map[core.EndpointID][]*core.Event // per-origin, ascending seq
	stats Stats
}

// Stats counts SAFE activity.
type Stats struct {
	Held     int // messages buffered awaiting stability
	Released int // messages delivered safely
}

// New returns a SAFE layer.
func New() core.Layer { return &Safe{} }

// Name implements core.Layer.
func (s *Safe) Name() string { return "SAFE" }

// Stats returns a snapshot of the layer's counters.
func (s *Safe) Stats() Stats { return s.stats }

// Init implements core.Layer.
func (s *Safe) Init(c *core.Context) error {
	if err := s.Base.Init(c); err != nil {
		return err
	}
	s.held = make(map[core.EndpointID][]*core.Event)
	return nil
}

// Up implements core.Layer.
func (s *Safe) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		if ev.ID.Origin.IsZero() {
			// No stability layer below assigned an identity; cannot
			// hold what cannot be released.
			s.Ctx.Up(&core.Event{Type: core.USystemError,
				Reason: "safe: CAST without message identity (no stability layer below?)"})
			return
		}
		// Receiving is this layer's definition of "processed": the ack
		// feeds the stability machinery below.
		s.hold(ev)
		s.Ctx.Down(&core.Event{Type: core.DAck, ID: ev.ID})
	case core.UStable:
		s.release(ev.Stability)
		s.Ctx.Up(ev)
	case core.UView:
		s.view = ev.View
		// Virtual synchrony below has equalized deliveries; releasing
		// everything held is consistent across survivors.
		s.flushAll()
		s.Ctx.Up(ev)
	default:
		s.Ctx.Up(ev)
	}
}

// hold buffers ev in per-origin sequence order.
func (s *Safe) hold(ev *core.Event) {
	s.stats.Held++
	q := s.held[ev.ID.Origin]
	q = append(q, ev)
	sort.Slice(q, func(i, j int) bool { return q[i].ID.Seq < q[j].ID.Seq })
	s.held[ev.ID.Origin] = q
}

// release delivers every held message the matrix proves has reached
// all members.
func (s *Safe) release(m *core.StabilityMatrix) {
	if m == nil {
		return
	}
	for origin, q := range s.held {
		stable := m.MinStable(origin)
		n := 0
		for n < len(q) && q[n].ID.Seq <= stable {
			s.stats.Released++
			s.Ctx.Up(q[n])
			n++
		}
		if n > 0 {
			s.held[origin] = q[n:]
		}
	}
}

// flushAll releases everything held (view-change cut).
func (s *Safe) flushAll() {
	origins := make([]core.EndpointID, 0, len(s.held))
	for o := range s.held {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i].Older(origins[j]) })
	for _, o := range origins {
		for _, ev := range s.held[o] {
			s.stats.Released++
			s.Ctx.Up(ev)
		}
		delete(s.held, o)
	}
}

// Down implements core.Layer.
func (s *Safe) Down(ev *core.Event) {
	if ev.Type == core.DDump {
		ev.Dump = append(ev.Dump, fmt.Sprintf("SAFE: held=%d released=%d",
			s.heldCount(), s.stats.Released))
	}
	s.Ctx.Down(ev)
}

func (s *Safe) heldCount() int {
	n := 0
	for _, q := range s.held {
		n += len(q)
	}
	return n
}
