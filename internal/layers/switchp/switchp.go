// Package switchp implements SWITCH, the run-time stack
// reconfiguration protocol — the paper's promise that layers "can be
// stacked on top of each other like LEGO blocks" *at run time* (§1),
// made failure-tolerant.
//
// A SWITCH layer sits directly above a virtually synchronous base
// (MBRSHIP:…:COM) and privately owns a *segment* — a core.SubStack of
// the reconfigurable layers (TOTAL, COMPRESS, CRYPT, ADAPT, …). The
// outer stack never mutates: reconfiguration replaces the segment
// behind SWITCH's fence, so skip tables, contexts and the membership
// machinery below stay frozen while the protocol personality above
// changes.
//
// The protocol drives four phases, each a round of ordinary casts
// through the VS base (so delivery is FIFO per sender and
// all-or-nothing within a view):
//
//	PROPOSE   the coordinator (oldest view member) validates the
//	          target against Table 3 (property.Derive over the layers
//	          actually beneath the fence) and casts PROPOSE{epoch+1,
//	          target, view}. Every member closes its gate: new
//	          application casts buffer above the segment.
//	QUIESCE   each member polls its segment for down-quiescence (no
//	          unsent output) and then casts QUIESCED — FIFO beneath
//	          guarantees the marker cannot overtake the data it
//	          fences, so the markers delimit a communication-closed
//	          cut ("Causing Communication Closure"). When a member has
//	          seen QUIESCED from everyone *and* its segment is
//	          up-quiescent (every fenced cast delivered, e.g. TOTAL's
//	          reorder buffer drained), it casts READY.
//	SWAP      the coordinator, on READY from everyone and no member's
//	          φ above the suspicion bound, casts COMMIT. Each member
//	          atomically retires the old segment (DDestroy, then a
//	          detach fence that silences its timers), builds the new
//	          one from factories resolved at PROPOSE time, bumps the
//	          epoch, and replays the current view into the fresh
//	          segment (swallowed at the top — the application sees no
//	          duplicate VIEW).
//	RESUME    the gate reopens: buffered casts — which never entered
//	          the old segment, so they carry no retired headers — flow
//	          through the new segment. A SWITCH upcall ("committed
//	          <target>") reports the epoch fence to the application.
//
// ABORT edges: a phase deadline after bounded re-propose retries, a
// suspicion spike at the commit point, or — decisively — any view
// change while a proposal is pending. Virtual synchrony makes the
// view-change rule uniform: COMMIT is a cast, so members sharing a
// view edge either all delivered it before the new view or none did;
// whoever reaches the new view un-committed aborts, reopens the gate
// through the *old* segment, and emits "aborted: …". Nothing is lost
// and nothing moved.
//
// Data crossing the fence is epoch-stamped. Matching-epoch traffic
// enters the segment; future-epoch traffic (sender committed first)
// buffers until the local swap; stale traffic from a retired *empty*
// segment is delivered directly (it carries no headers), while stale
// traffic bearing retired-segment headers is surfaced as an explicit
// LOST_MESSAGE — graceful degradation, never corruption. Divergence
// across a partition (one side committed, the other aborted) heals on
// merge: every member announces its epoch after each view install,
// and a behind member catches up with a local quiesce-and-swap.
package switchp

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/property"
	"horus/internal/wire"
)

// Wire kinds at the SWITCH level, popped from the top of every
// CAST/SEND that reaches the layer from below.
const (
	kData     = 1 // epoch-stamped cast leaving the segment: {epoch} + inner
	kSendApp  = 2 // epoch-stamped subset send leaving the segment: {epoch} + inner
	kPropose  = 3 // coordinator: begin a switch {epoch, target, viewID}
	kQuiesced = 4 // member: segment down-quiescent at the cut {epoch}
	kReady    = 5 // member: cut closed and segment drained {epoch}
	kCommit   = 6 // coordinator: swap now {epoch}
	kAbort    = 7 // coordinator: roll back {epoch, reason}
	kRequest  = 8 // member → coordinator: please propose {target} (send)
	kEpoch    = 9 // post-view epoch announcement {epoch, desc}
)

// Protocol tuning defaults; see DESIGN.md §10 for the rationale.
const (
	defaultQuiesceDeadline = 400 * time.Millisecond
	defaultReadyDeadline   = 400 * time.Millisecond
	defaultPollEvery       = 15 * time.Millisecond
	defaultRetries         = 2
	defaultPhiBound        = 8.0
	// pendingHighCap bounds the future-epoch buffer; beyond it a cast
	// is surfaced as LOST_MESSAGE rather than growing without bound.
	pendingHighCap = 1024
)

// Resolver maps a Table 3 layer name to the factory the switch engine
// instantiates it with. stackreg supplies its registry; tests and the
// chaos harness supply curated, tuned factories.
type Resolver func(name string) (core.Factory, bool)

// Option configures a Switch.
type Option func(*Switch)

// WithResolver sets the factory resolver for segment targets.
func WithResolver(r Resolver) Option { return func(s *Switch) { s.resolver = r } }

// WithInitialSegment sets the segment composed at stack construction
// (default: empty — the plain FIFO personality of the base).
func WithInitialSegment(desc string) Option { return func(s *Switch) { s.initial = desc } }

// WithNetProps sets the property set assumed of the raw network when
// re-deriving Table 3 well-formedness for a target (default P1).
func WithNetProps(p property.Set) Option { return func(s *Switch) { s.netProps = p } }

// WithOpaqueBase declares everything beneath the SWITCH layer an
// opaque transport already delivering p, so target validation derives
// only the segment (plus SWITCH's own row) over p instead of
// re-deriving through the below layers' Table 3 rows. Stacks whose
// base is hand-tuned off the Table 3 grid — the chaos harness's
// MBRSHIP:HBEAT:NAK:COM, which runs without FRAG — use this to state
// what the base actually provides.
func WithOpaqueBase(p property.Set) Option {
	return func(s *Switch) { s.netProps, s.opaqueBase = p, true }
}

// WithQuiesceDeadline bounds how long the coordinator waits for
// QUIESCED from everyone before a retry or abort.
func WithQuiesceDeadline(d time.Duration) Option { return func(s *Switch) { s.quiesceDeadline = d } }

// WithReadyDeadline bounds how long the coordinator waits for READY
// from everyone before a retry or abort.
func WithReadyDeadline(d time.Duration) Option { return func(s *Switch) { s.readyDeadline = d } }

// WithRetries sets how many times the coordinator re-proposes after a
// phase deadline before aborting.
func WithRetries(n int) Option { return func(s *Switch) { s.maxRetries = n } }

// WithPollEvery sets the quiescence polling period.
func WithPollEvery(d time.Duration) Option { return func(s *Switch) { s.pollEvery = d } }

// WithPhiBound sets the φ-accrual suspicion level above which switch
// proposals are refused and pending commits aborted (the failure
// detector's veto; requires HBEAT suspect upcalls beneath).
func WithPhiBound(b float64) Option { return func(s *Switch) { s.phiBound = b } }

// New returns a SWITCH factory with default options and no resolver —
// only the empty segment is then reachable. Compose real deployments
// with NewWith(WithResolver(...)).
func New() core.Layer { return NewWith()() }

// NewWith returns a SWITCH factory with the given options.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		s := &Switch{
			netProps:        property.P1,
			quiesceDeadline: defaultQuiesceDeadline,
			readyDeadline:   defaultReadyDeadline,
			pollEvery:       defaultPollEvery,
			maxRetries:      defaultRetries,
			phiBound:        defaultPhiBound,
			descByEpoch:     map[uint64]string{},
			phi:             map[core.EndpointID]float64{},
		}
		for _, o := range opts {
			o(s)
		}
		return s
	}
}

// Stats counts protocol outcomes for tests and the chaos CLI.
type Stats struct {
	Proposed     int // proposals this member accepted (gate closed)
	Committed    int // swaps completed by a COMMIT round
	SyncCommits  int // swaps completed by post-merge epoch catch-up
	Aborted      int // proposals rolled back
	Retries      int // coordinator re-propose rounds
	StaleDropped int // stale-epoch arrivals not deliverable through a segment
}

// proposal is one pending reconfiguration, identical on every member
// that accepted the PROPOSE cast (virtual synchrony: same view, same
// members).
type proposal struct {
	epoch       uint64
	desc        string
	spec        core.StackSpec
	members     []core.EndpointID
	coordinator core.EndpointID
}

// syncState is a post-merge catch-up to an epoch some other partition
// side committed: a local quiesce-and-swap with no group handshake.
type syncState struct {
	epoch uint64
	desc  string
	spec  core.StackSpec
}

type pendingData struct {
	epoch uint64
	ev    *core.Event
}

// Switch is the reconfiguration fence layer.
type Switch struct {
	core.Base

	resolver Resolver
	initial  string
	netProps   property.Set
	opaqueBase bool

	quiesceDeadline time.Duration
	readyDeadline   time.Duration
	pollEvery       time.Duration
	maxRetries      int
	phiBound        float64

	view    *core.View
	primary bool
	epoch   uint64
	desc    string
	seg     *core.SubStack

	descByEpoch map[uint64]string
	phi         map[core.EndpointID]float64

	gateClosed bool
	gateHeld   bool // view upcall in flight: delay gate dumps until it is forwarded
	gated      []*core.Event

	prop         *proposal
	sentQuiesced bool
	sentReady    bool
	quiescedFrom map[core.EndpointID]bool
	readyFrom    map[core.EndpointID]bool
	retries      int

	sync *syncState

	pendingHigh []pendingData

	deadlineCancel func()
	pollCancel     func()

	replaying bool
	tearing   bool
	destroyed bool

	stats Stats
}

// Name implements core.Layer.
func (sw *Switch) Name() string { return "SWITCH" }

// Segment implements core.SegmentHolder, so Stack.Focus and
// Stack.Names descend into the managed segment.
func (sw *Switch) Segment() *core.SubStack { return sw.seg }

// Init composes the initial segment.
func (sw *Switch) Init(c *core.Context) error {
	if err := sw.Base.Init(c); err != nil {
		return err
	}
	norm, spec, err := sw.validate(sw.initial)
	if err != nil {
		return fmt.Errorf("switch: initial segment: %w", err)
	}
	sw.desc = norm
	sw.descByEpoch[0] = sw.desc
	sw.seg, err = c.NewSubStack(spec, sw.fromSegTop, sw.fromSegBottom)
	return err
}

// Epoch returns the current reconfiguration epoch.
func (sw *Switch) Epoch() uint64 { return sw.epoch }

// Desc returns the current segment description ("" when empty).
func (sw *Switch) Desc() string { return sw.desc }

// Stats returns a snapshot of the protocol counters.
func (sw *Switch) Stats() Stats { return sw.stats }

// Switching reports whether a proposal or catch-up is in flight.
func (sw *Switch) Switching() bool { return sw.prop != nil || sw.sync != nil }

// RequestSwitch asks the group to reconfigure the managed segment to
// target (a ":"-joined layer list, top first; "" empties the
// segment). Must run on the endpoint's executor (Endpoint.Do). The
// target is validated — factories resolvable, Table 3 well-formedness
// re-derived over the layers actually beneath the fence — before
// anything is sent; the outcome itself is asynchronous and reported
// by a SWITCH upcall.
func (sw *Switch) RequestSwitch(target string) error {
	if sw.destroyed {
		return errors.New("switch: stack destroyed")
	}
	if sw.view == nil {
		return errors.New("switch: no view installed yet")
	}
	if sw.Switching() {
		return errors.New("switch: reconfiguration already in progress")
	}
	norm, _, err := sw.validate(target)
	if err != nil {
		return err
	}
	if norm == sw.desc {
		return nil // already configured; nothing to do
	}
	coord := sw.view.Oldest()
	if coord != sw.Ctx.Self() {
		m := message.New(nil)
		m.PushString(norm)
		m.PushUint8(kRequest)
		sw.Ctx.Down(&core.Event{Type: core.DSend, Msg: m,
			Dests: []core.EndpointID{coord}})
		return nil
	}
	return sw.propose(norm)
}

// validate parses, resolves and property-checks a target, returning
// the normalized description and the resolved factories.
func (sw *Switch) validate(target string) (string, core.StackSpec, error) {
	names := property.ParseStack(target)
	full := append([]string{}, names...)
	full = append(full, "SWITCH")
	// Re-derive over the layers actually beneath the fence. Layers
	// without a Table 3 row (test instrumentation, say) are treated as
	// transparent — they cannot be checked, but they also add nothing.
	// An opaque base skips the walk: netProps already states what
	// arrives at the fence.
	if !sw.opaqueBase {
		for _, n := range sw.Ctx.BelowNames() {
			if _, err := property.Spec(n); err == nil {
				full = append(full, n)
			}
		}
	}
	if _, err := property.Derive(sw.netProps, full); err != nil {
		return "", nil, err
	}
	spec := make(core.StackSpec, 0, len(names))
	for _, n := range names {
		if sw.resolver == nil {
			return "", nil, fmt.Errorf("switch: no resolver for segment layer %q", n)
		}
		f, ok := sw.resolver(n)
		if !ok {
			return "", nil, fmt.Errorf("switch: no factory for segment layer %q", n)
		}
		spec = append(spec, f)
	}
	return strings.Join(names, ":"), spec, nil
}

// propose starts a reconfiguration with the local member as
// coordinator: build the pending-proposal state first, then cast
// PROPOSE — the self-delivered copy finds the proposal already
// pending and is ignored (the idempotent re-confirm path).
func (sw *Switch) propose(desc string) error {
	if phi, bad := sw.maxPhi(); bad {
		return fmt.Errorf("switch: refusing to propose: member suspected (phi=%.1f)", phi)
	}
	_, spec, err := sw.validateNames(desc)
	if err != nil {
		return fmt.Errorf("switch: %v", err)
	}
	sw.prop = &proposal{
		epoch:       sw.epoch + 1,
		desc:        desc,
		spec:        spec,
		members:     append([]core.EndpointID(nil), sw.view.Members...),
		coordinator: sw.Ctx.Self(),
	}
	sw.stats.Proposed++
	sw.gateClosed = true
	sw.sentQuiesced, sw.sentReady = false, false
	sw.quiescedFrom = map[core.EndpointID]bool{}
	sw.readyFrom = map[core.EndpointID]bool{}
	sw.retries = 0
	sw.armDeadline(sw.quiesceDeadline)
	sw.armPoll()
	sw.castPropose(sw.prop.epoch, desc)
	sw.checkProgress()
	return nil
}

// ---- downward path ---------------------------------------------------

// Down implements core.Layer.
func (sw *Switch) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend:
		// Queue behind earlier gated casts even when the gate itself has
		// reopened but its dump is still held by an in-flight view
		// upcall (len check): overtaking them would break FIFO.
		if sw.gateClosed || len(sw.gated) > 0 {
			sw.gated = append(sw.gated, ev)
			return
		}
		sw.seg.Down(ev)
	case core.DDestroy:
		sw.destroyed = true
		sw.clearTimers()
		sw.gated = nil
		sw.seg.Down(ev) // falls out of the segment and continues below
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf(
			"SWITCH epoch=%d segment=%q switching=%v gated=%d stats=%+v",
			sw.epoch, sw.desc, sw.Switching(), len(sw.gated), sw.stats))
		sw.seg.Down(ev)
	default:
		sw.seg.Down(ev)
	}
}

// fromSegBottom receives events falling off the bottom of the managed
// segment. Outbound data is epoch-stamped here — after the segment's
// own headers, so the stamp is what a receiving SWITCH pops first.
func (sw *Switch) fromSegBottom(ev *core.Event) {
	if sw.tearing {
		return // DDestroy driven through a retiring segment stops here
	}
	switch ev.Type {
	case core.DCast:
		ev.Msg.PushUint64(sw.epoch)
		ev.Msg.PushUint8(kData)
	case core.DSend:
		ev.Msg.PushUint64(sw.epoch)
		ev.Msg.PushUint8(kSendApp)
	}
	sw.Ctx.Down(ev)
}

// fromSegTop receives events emerging from the top of the managed
// segment and forwards them to the application, stamping deliveries
// with the epoch they were delivered under.
func (sw *Switch) fromSegTop(ev *core.Event) {
	if sw.replaying && ev.Type == core.UView {
		return // synthetic view replay into a fresh segment; not for the app
	}
	if ev.Type == core.UCast || ev.Type == core.USend {
		ev.Epoch = sw.epoch
	}
	sw.Ctx.Up(ev)
}

// ---- upward path -----------------------------------------------------

// Up implements core.Layer.
func (sw *Switch) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		if ev.Msg == nil {
			sw.seg.Up(ev)
			return
		}
		switch ev.Msg.PopUint8() {
		case kData:
			sw.routeData(ev, false)
		case kPropose:
			sw.onPropose(ev)
		case kQuiesced:
			sw.onQuiesced(ev)
		case kReady:
			sw.onReady(ev)
		case kCommit:
			sw.onCommit(ev)
		case kAbort:
			sw.onAbort(ev)
		case kEpoch:
			sw.onEpochAnnounce(ev)
		default:
			// Unknown control kind: drop (forward compatibility).
		}
	case core.USend:
		if ev.Msg == nil {
			sw.seg.Up(ev)
			return
		}
		switch ev.Msg.PopUint8() {
		case kSendApp:
			sw.routeData(ev, true)
		case kRequest:
			sw.onRequest(ev)
		default:
		}
	case core.UView:
		sw.onView(ev)
	case core.USuspect:
		// Track graded suspicion passing the fence; a retraction
		// carries the lower level φ fell back to.
		sw.phi[ev.Source] = ev.Phi
		sw.seg.Up(ev)
	default:
		sw.seg.Up(ev)
	}
}

// routeData routes an epoch-stamped arrival.
func (sw *Switch) routeData(ev *core.Event, send bool) {
	e := ev.Msg.PopUint64()
	switch {
	case e == sw.epoch:
		sw.seg.Up(ev)
		if sw.prop != nil {
			sw.checkProgress() // an arrival may complete up-quiescence
		}
	case e > sw.epoch:
		// The sender already committed an epoch we have not reached —
		// hold the data for after our own swap.
		if len(sw.pendingHigh) < pendingHighCap {
			sw.pendingHigh = append(sw.pendingHigh, pendingData{epoch: e, ev: ev})
			return
		}
		sw.stats.StaleDropped++
		if !send {
			sw.Ctx.Up(&core.Event{Type: core.ULostMessage, Source: ev.Source,
				Reason: fmt.Sprintf("switch: future-epoch buffer full (epoch %d, at %d)", e, sw.epoch)})
		}
	default: // e < sw.epoch: the sender had not switched yet
		if d, known := sw.descByEpoch[e]; known && d == "" && !send {
			// The retired segment was empty: the payload is bare.
			// Deliver it directly — the loss-free path that makes a
			// FIFO→TOTAL upgrade seamless for stragglers.
			ev.Epoch = e
			sw.Ctx.Up(ev)
			return
		}
		sw.stats.StaleDropped++
		if !send {
			sw.Ctx.Up(&core.Event{Type: core.ULostMessage, Source: ev.Source,
				Reason: fmt.Sprintf("switch: stale cast from epoch %d (segment retired)", e)})
		}
		// Stale segment-internal sends (an old TOTAL's token, say) die
		// silently: the segment that understood them is gone.
	}
}

func (sw *Switch) onPropose(ev *core.Event) {
	epoch := ev.Msg.PopUint64()
	desc := ev.Msg.PopString()
	viewID := wire.PopViewID(ev.Msg)
	if sw.view == nil || viewID != sw.view.ID {
		return // proposed in a view we are not in; VS aborts it anyway
	}
	if sw.prop != nil {
		if epoch == sw.prop.epoch {
			// A coordinator retry nudge: idempotently re-confirm
			// whatever we already reported.
			if sw.sentQuiesced {
				sw.castCtl(kQuiesced, epoch)
			}
			if sw.sentReady {
				sw.castCtl(kReady, epoch)
			}
		}
		return
	}
	if epoch != sw.epoch+1 || sw.sync != nil {
		return
	}
	_, spec, err := sw.validateNames(desc)
	if err != nil {
		// Resolver asymmetry between members would be a deployment
		// bug; surface it and let the coordinator's deadline abort.
		sw.Ctx.Up(&core.Event{Type: core.USystemError,
			Reason: "switch: cannot resolve proposed segment: " + err.Error()})
		return
	}
	sw.prop = &proposal{
		epoch:       epoch,
		desc:        desc,
		spec:        spec,
		members:     append([]core.EndpointID(nil), sw.view.Members...),
		coordinator: sw.view.Oldest(),
	}
	sw.stats.Proposed++
	sw.gateClosed = true
	sw.sentQuiesced, sw.sentReady = false, false
	sw.quiescedFrom = map[core.EndpointID]bool{}
	sw.readyFrom = map[core.EndpointID]bool{}
	if sw.prop.coordinator == sw.Ctx.Self() {
		sw.retries = 0
		sw.armDeadline(sw.quiesceDeadline)
	}
	sw.armPoll()
	sw.checkProgress()
}

// validateNames resolves factories without the property re-derivation
// (the coordinator derived before proposing; members must not diverge
// on a check of identical inputs).
func (sw *Switch) validateNames(desc string) (string, core.StackSpec, error) {
	names := property.ParseStack(desc)
	spec := make(core.StackSpec, 0, len(names))
	for _, n := range names {
		if sw.resolver == nil {
			return "", nil, fmt.Errorf("no resolver for %q", n)
		}
		f, ok := sw.resolver(n)
		if !ok {
			return "", nil, fmt.Errorf("no factory for %q", n)
		}
		spec = append(spec, f)
	}
	return strings.Join(names, ":"), spec, nil
}

// checkProgress advances the member-side quiesce machine.
func (sw *Switch) checkProgress() {
	if sw.prop == nil {
		return
	}
	if !sw.sentQuiesced && sw.seg.Quiescent(true) {
		sw.sentQuiesced = true
		sw.castCtl(kQuiesced, sw.prop.epoch)
	}
	if sw.prop == nil { // the self-delivery above may have completed the round
		return
	}
	if sw.sentQuiesced && !sw.sentReady && sw.allFrom(sw.quiescedFrom) && sw.seg.Quiescent(false) {
		sw.sentReady = true
		sw.castCtl(kReady, sw.prop.epoch)
	}
}

func (sw *Switch) onQuiesced(ev *core.Event) {
	epoch := ev.Msg.PopUint64()
	if sw.prop == nil || epoch != sw.prop.epoch {
		return
	}
	sw.quiescedFrom[ev.Source] = true
	if sw.isCoordinator() && sw.allFrom(sw.quiescedFrom) {
		// Phase advance: the cut is closed; now wait for drains.
		sw.retries = 0
		sw.armDeadline(sw.readyDeadline)
	}
	sw.checkProgress()
}

func (sw *Switch) onReady(ev *core.Event) {
	epoch := ev.Msg.PopUint64()
	if sw.prop == nil || epoch != sw.prop.epoch {
		return
	}
	sw.readyFrom[ev.Source] = true
	if sw.isCoordinator() && sw.allFrom(sw.readyFrom) {
		if phi, bad := sw.maxPhi(); bad {
			sw.castAbort(fmt.Sprintf("member suspected at commit point (phi=%.1f)", phi))
			return
		}
		sw.castCtl(kCommit, epoch)
	}
}

func (sw *Switch) onCommit(ev *core.Event) {
	epoch := ev.Msg.PopUint64()
	if sw.prop == nil || epoch != sw.prop.epoch {
		return
	}
	prop := sw.prop
	sw.prop = nil
	sw.clearTimers()
	sw.stats.Committed++
	sw.swapTo(prop.epoch, prop.desc, prop.spec)
}

func (sw *Switch) onAbort(ev *core.Event) {
	epoch := ev.Msg.PopUint64()
	reason := ev.Msg.PopString()
	if sw.prop == nil || epoch != sw.prop.epoch {
		return
	}
	sw.abortLocal(reason)
}

func (sw *Switch) onRequest(ev *core.Event) {
	desc := ev.Msg.PopString()
	if sw.view == nil || sw.view.Oldest() != sw.Ctx.Self() {
		return // not the coordinator (any more); the requester retries
	}
	if sw.Switching() {
		return
	}
	if norm, _, err := sw.validate(desc); err == nil && norm != sw.desc {
		if err := sw.propose(norm); err != nil {
			sw.Ctx.Tracef("switch %s: relayed proposal refused: %v", sw.Ctx.Self(), err)
		}
	}
}

func (sw *Switch) onView(ev *core.Event) {
	// A pending catch-up must complete before the new view reaches the
	// application: forcing the sync here swaps segments and drains the
	// buffered higher-epoch casts while the old view is still current,
	// so a member that fell behind across a merge delivers them in the
	// same view its peers did — the virtual-synchrony cut stays exact.
	//
	// The gate stays held until the view has been forwarded up. A swap
	// or abort on this edge reopens the gate, and dumping the gated
	// casts earlier would let the membership layer — which has already
	// installed the new view below us — cast and self-deliver them
	// synchronously into an application still sitting in the old view,
	// while every remote member delivers them in the new one: a
	// view-agreement violation on both sides of the edge.
	sw.gateHeld = true
	sw.checkSync(true)
	sw.view = ev.View
	sw.primary = ev.Primary
	for id := range sw.phi {
		if !ev.View.Contains(id) {
			delete(sw.phi, id)
		}
	}
	if sw.prop != nil {
		// Virtual synchrony makes this uniform per view edge: COMMIT
		// either reached everyone sharing this edge before the view,
		// or no one — so whoever gets here un-committed aborts, and
		// they all do.
		sw.abortLocal("view change during switch")
	}
	sw.seg.Up(ev)
	// The dump must also wait for the membership layer to finish its
	// install: casts it deferred during the flush are older than
	// anything in the gate (they passed the gate before it closed) and
	// are re-cast only after the view upcall returns. A zero-delay
	// timer runs after the whole install chain at the same instant, so
	// the gated casts follow them and per-sender FIFO order survives
	// the edge.
	sw.Ctx.SetTimer(0, func() {
		sw.gateHeld = false
		sw.releaseGate()
	})
	if sw.epoch > 0 {
		// Epoch gossip: let members that aborted on the other side of
		// a partition discover what this side committed.
		m := message.New(nil)
		m.PushString(sw.desc)
		m.PushUint64(sw.epoch)
		m.PushUint8(kEpoch)
		sw.Ctx.Down(&core.Event{Type: core.DCast, Msg: m})
	}
}

func (sw *Switch) onEpochAnnounce(ev *core.Event) {
	epoch := ev.Msg.PopUint64()
	desc := ev.Msg.PopString()
	if epoch <= sw.epoch {
		return
	}
	if sw.sync != nil {
		if epoch > sw.sync.epoch {
			if _, spec, err := sw.validateNames(desc); err == nil {
				sw.sync.epoch, sw.sync.desc, sw.sync.spec = epoch, desc, spec
			}
		}
		return
	}
	_, spec, err := sw.validateNames(desc)
	if err != nil {
		sw.Ctx.Tracef("switch %s: cannot catch up to epoch %d: %v", sw.Ctx.Self(), epoch, err)
		return
	}
	if sw.prop != nil {
		sw.abortLocal("superseded by a committed epoch on the other partition side")
	}
	sw.sync = &syncState{epoch: epoch, desc: desc, spec: spec}
	sw.gateClosed = true
	sw.armPoll()
	// Bounded local drain, then swap regardless: the retired traffic
	// still in flight is handled by the stale-epoch rules.
	sw.armDeadline(sw.quiesceDeadline)
	sw.checkSync(false)
}

// checkSync completes a catch-up when the local segment drains (or
// when forced by the deadline).
func (sw *Switch) checkSync(force bool) {
	if sw.sync == nil {
		return
	}
	if !force && !(sw.seg.Quiescent(true) && sw.seg.Quiescent(false)) {
		return
	}
	st := sw.sync
	sw.sync = nil
	sw.clearTimers()
	sw.stats.SyncCommits++
	sw.swapTo(st.epoch, st.desc, st.spec)
}

// ---- swap / abort ----------------------------------------------------

// swapTo atomically replaces the segment: retire behind a detach
// fence, build fresh, bump the epoch, replay the view, reopen the
// gate. Runs only at a communication-closed cut (COMMIT) or a bounded
// local drain (catch-up).
func (sw *Switch) swapTo(epoch uint64, desc string, spec core.StackSpec) {
	old := sw.seg
	sw.tearing = true
	old.Down(&core.Event{Type: core.DDestroy})
	sw.tearing = false
	old.Detach()

	seg, err := sw.Ctx.NewSubStack(spec, sw.fromSegTop, sw.fromSegBottom)
	if err != nil {
		// Factories were resolved at propose time, so this is a layer
		// Init failure — fall back to the empty segment rather than
		// leaving the stack headless.
		sw.Ctx.Up(&core.Event{Type: core.USystemError,
			Reason: "switch: new segment failed to initialize: " + err.Error()})
		seg, _ = sw.Ctx.NewSubStack(nil, sw.fromSegTop, sw.fromSegBottom)
		desc = ""
	}
	sw.seg = seg
	sw.epoch = epoch
	sw.desc = desc
	sw.descByEpoch[epoch] = desc

	if sw.view != nil {
		// The fresh segment must adopt the membership, but the
		// application already has this view: swallow the replay at the
		// segment top.
		sw.replaying = true
		seg.Up(&core.Event{Type: core.UView, View: sw.view, Primary: sw.primary})
		sw.replaying = false
	}

	sw.Ctx.Up(&core.Event{Type: core.USwitch, Epoch: epoch,
		Reason: strings.TrimSpace("committed " + desc)})
	sw.openGate()
	sw.drainPendingHigh()
}

// abortLocal rolls a pending proposal back: the old segment never
// moved, so reopening the gate through it is the whole rollback.
func (sw *Switch) abortLocal(reason string) {
	prop := sw.prop
	if prop == nil {
		return
	}
	sw.prop = nil
	sw.clearTimers()
	sw.stats.Aborted++
	sw.Ctx.Up(&core.Event{Type: core.USwitch, Epoch: prop.epoch,
		Reason: "aborted: " + reason})
	sw.openGate()
}

func (sw *Switch) openGate() {
	sw.gateClosed = false
	sw.releaseGate()
}

// releaseGate dumps the gated casts once the gate is open and no view
// upcall is mid-flight (see onView for why the hold matters).
func (sw *Switch) releaseGate() {
	if sw.gateClosed || sw.gateHeld || len(sw.gated) == 0 {
		return
	}
	gated := sw.gated
	sw.gated = nil
	for _, ev := range gated {
		sw.seg.Down(ev)
	}
}

// drainPendingHigh re-routes buffered future-epoch data after a swap.
func (sw *Switch) drainPendingHigh() {
	if len(sw.pendingHigh) == 0 {
		return
	}
	held := sw.pendingHigh
	sw.pendingHigh = nil
	for _, p := range held {
		switch {
		case p.epoch == sw.epoch:
			p.ev.Msg.PushUint64(p.epoch) // re-stamp for routeData
			send := p.ev.Type == core.USend
			sw.routeData(p.ev, send)
		case p.epoch > sw.epoch:
			sw.pendingHigh = append(sw.pendingHigh, p)
		default:
			sw.stats.StaleDropped++
			if p.ev.Type == core.UCast {
				sw.Ctx.Up(&core.Event{Type: core.ULostMessage, Source: p.ev.Source,
					Reason: fmt.Sprintf("switch: buffered cast from skipped epoch %d", p.epoch)})
			}
		}
	}
}

// ---- helpers ---------------------------------------------------------

func (sw *Switch) isCoordinator() bool {
	return sw.prop != nil && sw.prop.coordinator == sw.Ctx.Self()
}

func (sw *Switch) allFrom(set map[core.EndpointID]bool) bool {
	if sw.prop == nil {
		return false
	}
	for _, m := range sw.prop.members {
		if !set[m] {
			return false
		}
	}
	return true
}

// maxPhi reports the highest tracked suspicion and whether it crosses
// the veto bound. Without a suspect source beneath (no HBEAT upcalls)
// the map stays empty and the veto never fires.
func (sw *Switch) maxPhi() (float64, bool) {
	var max float64
	for _, p := range sw.phi {
		if p > max {
			max = p
		}
	}
	return max, max >= sw.phiBound
}

func (sw *Switch) castPropose(epoch uint64, desc string) {
	m := message.New(nil)
	wire.PushViewID(m, sw.view.ID)
	m.PushString(desc)
	m.PushUint64(epoch)
	m.PushUint8(kPropose)
	sw.Ctx.Down(&core.Event{Type: core.DCast, Msg: m})
}

func (sw *Switch) castCtl(kind uint8, epoch uint64) {
	m := message.New(nil)
	m.PushUint64(epoch)
	m.PushUint8(kind)
	sw.Ctx.Down(&core.Event{Type: core.DCast, Msg: m})
}

func (sw *Switch) castAbort(reason string) {
	if sw.prop == nil {
		return
	}
	m := message.New(nil)
	m.PushString(reason)
	m.PushUint64(sw.prop.epoch)
	m.PushUint8(kAbort)
	sw.Ctx.Down(&core.Event{Type: core.DCast, Msg: m})
	// The coordinator's own abort takes effect immediately; the
	// self-delivered copy of the cast then finds no pending proposal
	// and is ignored, so this is idempotent under VS loopback.
	sw.abortLocal(reason)
}

// armDeadline (re)arms the coordinator phase deadline — also used as
// the bounded catch-up drain. On expiry the coordinator re-proposes
// up to maxRetries times, then aborts.
func (sw *Switch) armDeadline(d time.Duration) {
	if sw.deadlineCancel != nil {
		sw.deadlineCancel()
	}
	sw.deadlineCancel = sw.Ctx.SetTimer(d, func() {
		sw.deadlineCancel = nil
		sw.onDeadline(d)
	})
}

func (sw *Switch) onDeadline(d time.Duration) {
	if sw.sync != nil {
		sw.checkSync(true)
		return
	}
	if sw.prop == nil || !sw.isCoordinator() {
		return
	}
	if sw.retries < sw.maxRetries {
		sw.retries++
		sw.stats.Retries++
		sw.castPropose(sw.prop.epoch, sw.prop.desc)
		sw.armDeadline(d)
		return
	}
	phase := "quiesce"
	if sw.allFrom(sw.quiescedFrom) {
		phase = "ready"
	}
	sw.castAbort(phase + " deadline expired")
}

func (sw *Switch) armPoll() {
	if sw.pollCancel != nil {
		return
	}
	sw.pollCancel = sw.Ctx.SetTimer(sw.pollEvery, func() {
		sw.pollCancel = nil
		sw.checkProgress()
		sw.checkSync(false)
		if sw.Switching() {
			sw.armPoll()
		}
	})
}

func (sw *Switch) clearTimers() {
	if sw.deadlineCancel != nil {
		sw.deadlineCancel()
		sw.deadlineCancel = nil
	}
	if sw.pollCancel != nil {
		sw.pollCancel()
		sw.pollCancel = nil
	}
}
