package switchp_test

import (
	"strings"
	"testing"

	"horus/internal/core"
	"horus/internal/layers/compress"
	"horus/internal/layers/switchp"
	"horus/internal/layers/total"
	"horus/internal/layertest"
	"horus/internal/message"
	"horus/internal/property"
	"horus/internal/wire"
)

// Wire kinds at the SWITCH level, mirrored from the implementation
// (these are wire constants; a change is a protocol change).
const (
	wData     = 1
	wPropose  = 3
	wQuiesced = 4
	wReady    = 5
	wCommit   = 6
	wAbort    = 7
	wRequest  = 8
	wEpoch    = 9
)

func resolver(name string) (core.Factory, bool) {
	switch name {
	case "TOTAL":
		return total.New, true
	case "COMPRESS":
		return compress.New, true
	}
	return nil, false
}

func setup(t *testing.T, opts ...switchp.Option) (*layertest.Harness, *switchp.Switch) {
	t.Helper()
	// The harness fakes the VS base with capture layers, so declare
	// what a real MBRSHIP:…:COM base would offer beneath the fence.
	opts = append([]switchp.Option{
		switchp.WithResolver(resolver),
		switchp.WithNetProps(property.SegmentBase),
	}, opts...)
	h := layertest.New(t, switchp.NewWith(opts...))
	sw := h.G.Stack().Focus("SWITCH").(*switchp.Switch)
	return h, sw
}

// ctl builds a SWITCH control cast as a peer would send it.
func ctl(kind uint8, epoch uint64, src core.EndpointID) *core.Event {
	m := message.New(nil)
	m.PushUint64(epoch)
	m.PushUint8(kind)
	return &core.Event{Type: core.UCast, Msg: m, Source: src}
}

func proposeEv(epoch uint64, desc string, v *core.View, src core.EndpointID) *core.Event {
	m := message.New(nil)
	wire.PushViewID(m, v.ID)
	m.PushString(desc)
	m.PushUint64(epoch)
	m.PushUint8(wPropose)
	return &core.Event{Type: core.UCast, Msg: m, Source: src}
}

// popKind destructively reads the SWITCH-level kind of a captured
// downward cast.
func popKind(ev *core.Event) uint8 { return ev.Msg.PopUint8() }

func TestRequestValidation(t *testing.T) {
	h, sw := setup(t)
	do := func(target string) error {
		var err error
		h.EP.Do(func() { err = sw.RequestSwitch(target) })
		return err
	}
	if err := do("TOTAL"); err == nil || !strings.Contains(err.Error(), "no view") {
		t.Fatalf("switch without a view: err=%v", err)
	}
	h.InstallView(h.Self(), layertest.ID("p", 2))
	if err := do("TOTAL:COM"); err == nil || !strings.Contains(err.Error(), "requires") {
		t.Fatalf("ill-formed target not rejected by the property calculus: err=%v", err)
	}
	if err := do("NOPE"); err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("unknown layer not rejected: err=%v", err)
	}
	if err := do(""); err != nil {
		t.Fatalf("no-op switch to the current (empty) segment: err=%v", err)
	}
}

func TestPhiVetoOnPropose(t *testing.T) {
	h, sw := setup(t)
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer)
	h.InjectUp(&core.Event{Type: core.USuspect, Source: peer, Phi: 99})
	var err error
	h.EP.Do(func() { err = sw.RequestSwitch("TOTAL") })
	if err == nil || !strings.Contains(err.Error(), "suspected") {
		t.Fatalf("high phi did not veto the proposal: err=%v", err)
	}
	// Retraction lifts the veto.
	h.InjectUp(&core.Event{Type: core.USuspect, Source: peer, Phi: 0})
	h.EP.Do(func() { err = sw.RequestSwitch("TOTAL") })
	if err != nil {
		t.Fatalf("propose after retraction: %v", err)
	}
	if !sw.Switching() {
		t.Fatal("no proposal pending after successful request")
	}
}

func TestNonCoordinatorForwardsRequest(t *testing.T) {
	h, sw := setup(t)
	older := layertest.ID("0older", 0) // lower birth: the coordinator
	h.InstallView(h.Self(), older)
	h.Reset()
	var err error
	h.EP.Do(func() { err = sw.RequestSwitch("TOTAL") })
	if err != nil {
		t.Fatal(err)
	}
	sends := h.DownOfType(core.DSend)
	if len(sends) != 1 || sends[0].Dests[0] != older {
		t.Fatalf("request not forwarded to the coordinator: %v", sends)
	}
	if k := popKind(sends[0]); k != wRequest {
		t.Fatalf("forwarded kind = %d, want request", k)
	}
	if got := sends[0].Msg.PopString(); got != "TOTAL" {
		t.Fatalf("forwarded target = %q", got)
	}
}

// TestFullCommitFlow drives the PROPOSE → QUIESCE → SWAP → RESUME
// round from the coordinator's seat, emulating the peer's (and VS
// loopback's) control casts by injection.
func TestFullCommitFlow(t *testing.T) {
	h, sw := setup(t)
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer) // self (birth 1) is oldest: coordinator
	h.Reset()

	var err error
	h.EP.Do(func() { err = sw.RequestSwitch("TOTAL") })
	if err != nil {
		t.Fatal(err)
	}
	// The coordinator casts PROPOSE then, with an empty (trivially
	// quiescent) segment, its own QUIESCED marker.
	casts := h.DownOfType(core.DCast)
	if len(casts) != 2 {
		t.Fatalf("casts after propose = %d, want PROPOSE+QUIESCED", len(casts))
	}
	if k := popKind(casts[0]); k != wPropose {
		t.Fatalf("first cast kind = %d, want propose", k)
	}
	if k := popKind(casts[1]); k != wQuiesced {
		t.Fatalf("second cast kind = %d, want quiesced", k)
	}

	// The gate is closed: an application cast buffers above the segment.
	h.InjectDown(core.NewCast(message.New([]byte("fenced"))))
	if got := h.DownOfType(core.DCast); len(got) != 2 {
		t.Fatal("application cast leaked through a closed gate")
	}

	// Everyone's QUIESCED arrives (self via loopback, then the peer):
	// the cut is closed, the segment is drained → READY.
	h.InjectUp(ctl(wQuiesced, 1, h.Self()))
	h.InjectUp(ctl(wQuiesced, 1, peer))
	casts = h.DownOfType(core.DCast)
	if len(casts) != 3 || popKind(casts[2]) != wReady {
		t.Fatalf("no READY after all-quiesced (casts=%d)", len(casts))
	}

	// Everyone's READY: the coordinator commits.
	h.InjectUp(ctl(wReady, 1, h.Self()))
	h.InjectUp(ctl(wReady, 1, peer))
	casts = h.DownOfType(core.DCast)
	if len(casts) != 4 || popKind(casts[3]) != wCommit {
		t.Fatalf("no COMMIT after all-ready (casts=%d)", len(casts))
	}

	// The commit's own delivery performs the swap and resumes.
	h.InjectUp(ctl(wCommit, 1, h.Self()))
	sws := h.UpOfType(core.USwitch)
	if len(sws) != 1 || sws[0].Epoch != 1 || sws[0].Reason != "committed TOTAL" {
		t.Fatalf("SWITCH upcall = %v", sws)
	}
	if sw.Epoch() != 1 || sw.Desc() != "TOTAL" {
		t.Fatalf("epoch=%d desc=%q after commit", sw.Epoch(), sw.Desc())
	}
	if names := h.G.Stack().Names(); !strings.Contains(names, "SWITCH[TOTAL]") {
		t.Fatalf("stack names = %q, segment not visible", names)
	}
	if h.G.Stack().Focus("TOTAL") == nil {
		t.Fatal("Focus cannot see into the managed segment")
	}

	// The fenced cast resumed through the NEW segment: epoch-1 stamp
	// over a TOTAL header (self is rank 0, so it holds the token and
	// stamps immediately).
	casts = h.DownOfType(core.DCast)
	if len(casts) != 5 {
		t.Fatalf("gated cast not released (casts=%d)", len(casts))
	}
	rel := casts[4]
	if k := popKind(rel); k != wData {
		t.Fatalf("released kind = %d, want data", k)
	}
	if e := rel.Msg.PopUint64(); e != 1 {
		t.Fatalf("released epoch = %d, want 1", e)
	}
	if k := rel.Msg.PopUint8(); k != 1 { // TOTAL's own kData
		t.Fatalf("released cast lacks the TOTAL header (kind %d)", k)
	}
	rel.Msg.PopUint64() // TOTAL's ord
	if string(rel.Msg.Body()) != "fenced" {
		t.Fatalf("released body = %q", rel.Msg.Body())
	}
	if st := sw.Stats(); st.Committed != 1 || st.Aborted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAbortOnViewChange pins the rollback edge: a view change while a
// proposal is pending aborts it, and the gated traffic resumes
// through the untouched old segment.
func TestAbortOnViewChange(t *testing.T) {
	h, sw := setup(t)
	peer := layertest.ID("p", 2)
	v := h.InstallView(h.Self(), peer)
	h.Reset()

	// A peer-coordinated proposal arrives; the gate closes.
	h.InjectUp(proposeEv(1, "TOTAL", v, peer))
	if !sw.Switching() {
		t.Fatal("proposal not pending")
	}
	h.InjectDown(core.NewCast(message.New([]byte("held"))))

	// The view changes mid-handshake (e.g. a partition): abort.
	w := core.NewView(core.ViewID{Seq: 2, Coord: h.Self()}, "test", []core.EndpointID{h.Self()})
	h.InjectUp(&core.Event{Type: core.UView, View: w, Primary: true})
	h.Run(0) // the abort's gate release rides a same-instant timer

	sws := h.UpOfType(core.USwitch)
	if len(sws) != 1 || !strings.HasPrefix(sws[0].Reason, "aborted") {
		t.Fatalf("SWITCH upcall = %v, want abort", sws)
	}
	if sw.Epoch() != 0 || sw.Desc() != "" || sw.Switching() {
		t.Fatalf("rollback left epoch=%d desc=%q switching=%v", sw.Epoch(), sw.Desc(), sw.Switching())
	}
	// The held cast resumed through the OLD (empty) segment at epoch 0.
	var rel *core.Event
	for _, ev := range h.DownOfType(core.DCast) {
		if k := popKind(ev); k == wData {
			rel = ev
			break
		}
	}
	if rel == nil {
		t.Fatal("held cast not released on abort")
	}
	if e := rel.Msg.PopUint64(); e != 0 {
		t.Fatalf("released epoch = %d, want 0 (old segment)", e)
	}
	if string(rel.Msg.Body()) != "held" {
		t.Fatalf("released body = %q (old empty segment adds no headers)", rel.Msg.Body())
	}
}

// TestCoordinatorRetriesThenAborts pins the deadline/retry/backoff
// edge: an unresponsive peer forces bounded re-proposes, then ABORT.
func TestCoordinatorRetriesThenAborts(t *testing.T) {
	h, sw := setup(t, switchp.WithRetries(2))
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer)
	h.Reset()

	h.EP.Do(func() {
		if err := sw.RequestSwitch("TOTAL"); err != nil {
			t.Error(err)
		}
	})
	h.Run(5 * 1000 * 1000 * 1000) // 5s of virtual time: all deadlines expire

	var kinds []uint8
	for _, ev := range h.DownOfType(core.DCast) {
		kinds = append(kinds, popKind(ev))
	}
	proposes, aborts := 0, 0
	for _, k := range kinds {
		switch k {
		case wPropose:
			proposes++
		case wAbort:
			aborts++
		}
	}
	if proposes != 3 { // initial + 2 retries
		t.Fatalf("proposes = %d (kinds %v), want 3", proposes, kinds)
	}
	if aborts != 1 {
		t.Fatalf("aborts = %d (kinds %v), want 1", aborts, kinds)
	}
	sws := h.UpOfType(core.USwitch)
	if len(sws) != 1 || !strings.Contains(sws[0].Reason, "deadline") {
		t.Fatalf("SWITCH upcall = %v, want deadline abort", sws)
	}
	st := sw.Stats()
	if st.Retries != 2 || st.Aborted != 1 || st.Committed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if sw.Switching() || sw.Epoch() != 0 {
		t.Fatal("abort did not roll back cleanly")
	}
}

// TestEpochRouting pins the epoch fence: future-epoch data buffers
// until the local swap, post-merge epoch announcements drive a
// catch-up commit, stale data from a retired empty segment is
// delivered loss-free, and stale data from an unknown retired segment
// surfaces as an explicit LOST_MESSAGE.
func TestEpochRouting(t *testing.T) {
	h, sw := setup(t)
	peer := layertest.ID("p", 2)
	h.InstallView(h.Self(), peer)
	h.Reset()

	// A cast from epoch 5 (the sender switched first): TOTAL header
	// under the epoch stamp. Must buffer, not deliver.
	m := message.New([]byte("early"))
	m.PushUint64(1) // TOTAL ord
	m.PushUint8(1)  // TOTAL kData
	m.PushUint64(5)
	m.PushUint8(wData)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatal("future-epoch cast delivered early")
	}

	// The epoch announcement arrives (e.g. after a merge): catch up.
	am := message.New(nil)
	am.PushString("TOTAL")
	am.PushUint64(5)
	am.PushUint8(wEpoch)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: am, Source: peer})

	sws := h.UpOfType(core.USwitch)
	if len(sws) != 1 || sws[0].Epoch != 5 || sws[0].Reason != "committed TOTAL" {
		t.Fatalf("catch-up SWITCH upcall = %v", sws)
	}
	if sw.Epoch() != 5 || sw.Desc() != "TOTAL" {
		t.Fatalf("epoch=%d desc=%q after catch-up", sw.Epoch(), sw.Desc())
	}
	if st := sw.Stats(); st.SyncCommits != 1 {
		t.Fatalf("stats = %+v, want one sync commit", st)
	}
	// The buffered cast drained through the new TOTAL, in stamp order.
	got := h.UpOfType(core.UCast)
	if len(got) != 1 || string(got[0].Msg.Body()) != "early" || got[0].Epoch != 5 {
		t.Fatalf("buffered cast not delivered after catch-up: %v", got)
	}

	// Stale cast from epoch 3 — we never learned that segment: an
	// explicit loss, never a corrupt delivery.
	h.Reset()
	m3 := message.New([]byte("lost"))
	m3.PushUint64(3)
	m3.PushUint8(wData)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m3, Source: peer})
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatal("stale unknown-segment cast delivered")
	}
	if lost := h.UpOfType(core.ULostMessage); len(lost) != 1 || lost[0].Source != peer {
		t.Fatalf("stale cast not surfaced as LOST_MESSAGE: %v", lost)
	}

	// Stale cast from epoch 0 — the retired segment was empty, so the
	// payload is bare and deliverable: the loss-free upgrade path.
	h.Reset()
	m0 := message.New([]byte("straggler"))
	m0.PushUint64(0)
	m0.PushUint8(wData)
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m0, Source: peer})
	got = h.UpOfType(core.UCast)
	if len(got) != 1 || string(got[0].Msg.Body()) != "straggler" || got[0].Epoch != 0 {
		t.Fatalf("empty-segment straggler not delivered directly: %v", got)
	}
}

// TestRetiredSegmentIsInert pins the detach fence: after a swap, the
// old segment's layers cannot leak events into the stack.
func TestRetiredSegmentIsInert(t *testing.T) {
	h, sw := setup(t, switchp.WithInitialSegment("TOTAL"))
	peer := layertest.ID("p", 2)
	v := h.InstallView(h.Self(), peer)
	h.Reset()

	oldTotal := h.G.Stack().Focus("TOTAL").(*total.Total)

	// Commit a switch to the empty segment (remove TOTAL).
	h.InjectUp(proposeEv(1, "", v, peer))
	h.InjectUp(ctl(wQuiesced, 1, h.Self()))
	h.InjectUp(ctl(wQuiesced, 1, peer))
	h.InjectUp(ctl(wReady, 1, h.Self()))
	h.InjectUp(ctl(wReady, 1, peer))
	h.InjectUp(ctl(wCommit, 1, peer))
	if sw.Epoch() != 1 || sw.Desc() != "" {
		t.Fatalf("downgrade not committed: epoch=%d desc=%q", sw.Epoch(), sw.Desc())
	}
	if h.G.Stack().Focus("TOTAL") != nil {
		t.Fatal("retired TOTAL still visible via Focus")
	}

	// Poking the retired instance emits nothing into the live stack.
	h.Reset()
	h.EP.Do(func() { oldTotal.Down(core.NewCast(message.New([]byte("zombie")))) })
	if n := len(h.Bot.DownEvents); n != 0 {
		t.Fatalf("retired segment leaked %d events into the stack", n)
	}
	h.Run(2 * 1000 * 1000 * 1000) // any zombie timers fire into the void
	if n := len(h.Bot.DownEvents); n != 0 {
		t.Fatalf("retired segment timer leaked %d events", n)
	}
}
