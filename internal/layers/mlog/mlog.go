// Package mlog implements the logging layer (Figure 1: "tolerance of
// total crash failures"). Every delivered multicast and every view
// installation is appended to a durable store; after a total crash —
// all members gone — a restarted member replays the log to rebuild its
// application state up to the last recorded delivery.
//
// The store is an interface; MemStore is the in-process stand-in for
// the disk the paper's deployments would use (the substitution is
// behaviour-preserving: what matters to the protocol is the
// append/replay contract, not the medium).
package mlog

import (
	"fmt"
	"sync"

	"horus/internal/core"
	"horus/internal/message"
)

// EntryKind discriminates log entries.
type EntryKind int

// Log entry kinds.
const (
	EntryCast EntryKind = iota + 1
	EntryView
)

// Entry is one durable log record.
type Entry struct {
	Kind   EntryKind
	Source core.EndpointID
	Body   []byte
	View   *core.View
}

// Store is the durability contract.
type Store interface {
	// Append durably adds one entry.
	Append(Entry) error
	// Entries returns all entries in append order.
	Entries() []Entry
}

// MemStore is an in-memory Store, safe for concurrent use.
type MemStore struct {
	mu      sync.Mutex
	entries []Entry
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (s *MemStore) Append(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, e)
	return nil
}

// Entries implements Store.
func (s *MemStore) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Entry(nil), s.entries...)
}

// Mlog is one logging layer instance.
type Mlog struct {
	core.Base
	store Store
	stats Stats
}

// Stats counts logging activity.
type Stats struct {
	Logged int
	Errors int
}

// New returns a factory for logging layers writing to store.
func New(store Store) core.Factory {
	return func() core.Layer { return &Mlog{store: store} }
}

// Name implements core.Layer.
func (l *Mlog) Name() string { return "MLOG" }

// Stats returns a snapshot of the layer's counters.
func (l *Mlog) Stats() Stats { return l.stats }

// Init implements core.Layer.
func (l *Mlog) Init(c *core.Context) error {
	if err := l.Base.Init(c); err != nil {
		return err
	}
	if l.store == nil {
		return fmt.Errorf("mlog: nil store")
	}
	return nil
}

// Up implements core.Layer.
func (l *Mlog) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast:
		l.append(Entry{Kind: EntryCast, Source: ev.Source,
			Body: append([]byte(nil), ev.Msg.Body()...)})
	case core.UView:
		l.append(Entry{Kind: EntryView, View: ev.View})
	}
	l.Ctx.Up(ev)
}

// Down implements core.Layer.
func (l *Mlog) Down(ev *core.Event) {
	if ev.Type == core.DDump {
		ev.Dump = append(ev.Dump, fmt.Sprintf("MLOG: logged=%d errors=%d", l.stats.Logged, l.stats.Errors))
	}
	l.Ctx.Down(ev)
}

func (l *Mlog) append(e Entry) {
	if err := l.store.Append(e); err != nil {
		l.stats.Errors++
		l.Ctx.Up(&core.Event{Type: core.USystemError, Reason: "mlog: " + err.Error()})
		return
	}
	l.stats.Logged++
}

// Replay feeds the stored entries to fn in order — the total-crash
// recovery path. fn receives reconstructed CAST and VIEW events.
func Replay(store Store, fn core.Handler) {
	for _, e := range store.Entries() {
		switch e.Kind {
		case EntryCast:
			fn(&core.Event{Type: core.UCast, Source: e.Source, Msg: message.New(e.Body)})
		case EntryView:
			fn(&core.Event{Type: core.UView, View: e.View})
		}
	}
}

// Transparent implements core.Skipper: MLOG records deliveries and
// views on the way up and answers dumps on the way down (§10 item 1).
func (l *Mlog) Transparent(t core.EventType, down bool) bool {
	if down {
		return t != core.DDump
	}
	switch t {
	case core.UCast, core.UView:
		return false
	}
	return true
}
