package mlog_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/mlog"
	"horus/internal/layertest"
	"horus/internal/message"
)

func TestDeliveriesAndViewsLogged(t *testing.T) {
	store := mlog.NewMemStore()
	h := layertest.New(t, mlog.New(store))
	peer := layertest.ID("p", 2)
	v := core.NewView(core.ViewID{Seq: 1, Coord: peer}, "test", []core.EndpointID{peer, h.Self()})
	h.InjectUp(&core.Event{Type: core.UView, View: v})
	h.InjectUp(&core.Event{Type: core.UCast, Msg: message.New([]byte("one")), Source: peer})
	h.InjectUp(&core.Event{Type: core.UCast, Msg: message.New([]byte("two")), Source: peer})

	entries := store.Entries()
	if len(entries) != 3 {
		t.Fatalf("%d entries, want 3", len(entries))
	}
	if entries[0].Kind != mlog.EntryView || entries[0].View.ID != v.ID {
		t.Errorf("entry 0 = %+v, want the view", entries[0])
	}
	if entries[1].Kind != mlog.EntryCast || string(entries[1].Body) != "one" {
		t.Errorf("entry 1 = %+v", entries[1])
	}
}

func TestReplayRebuildsState(t *testing.T) {
	store := mlog.NewMemStore()
	h := layertest.New(t, mlog.New(store))
	peer := layertest.ID("p", 2)
	for _, s := range []string{"a", "b", "c"} {
		h.InjectUp(&core.Event{Type: core.UCast, Msg: message.New([]byte(s)), Source: peer})
	}

	// Total crash: rebuild application state from the durable log
	// alone.
	var rebuilt []string
	mlog.Replay(store, func(ev *core.Event) {
		if ev.Type == core.UCast {
			rebuilt = append(rebuilt, string(ev.Msg.Body()))
		}
	})
	if len(rebuilt) != 3 || rebuilt[0] != "a" || rebuilt[2] != "c" {
		t.Fatalf("replay = %v, want [a b c]", rebuilt)
	}
}

func TestDeliveryStillPassesUp(t *testing.T) {
	h := layertest.New(t, mlog.New(mlog.NewMemStore()))
	h.InjectUp(&core.Event{Type: core.UCast, Msg: message.New([]byte("x")), Source: layertest.ID("p", 2)})
	if got := h.LastUp(); got == nil || string(got.Msg.Body()) != "x" {
		t.Fatal("MLOG swallowed the delivery")
	}
}

func TestNilStoreFailsInit(t *testing.T) {
	h := layertest.New(t, mlog.New(mlog.NewMemStore()))
	ep := h.Net.NewEndpoint("x")
	if _, err := ep.Join("g", core.StackSpec{mlog.New(nil)}, nil); err == nil {
		t.Fatal("nil store accepted")
	}
}
