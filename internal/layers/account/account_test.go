package account_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/account"
	"horus/internal/layertest"
	"horus/internal/message"
)

func TestLedgerMeters(t *testing.T) {
	h := layertest.New(t, account.New)
	peer := layertest.ID("p", 2)
	h.InjectDown(core.NewCast(message.New([]byte("12345"))))
	h.InjectDown(core.NewSend(message.New([]byte("123")), []core.EndpointID{peer}))
	h.InjectUp(&core.Event{Type: core.UCast, Msg: message.New([]byte("1234567")), Source: peer})

	a := h.G.Focus("ACCOUNT").(*account.Account)
	ledger := a.Ledger()
	self := ledger[h.Self()]
	if self.MsgsOut != 2 || self.BytesOut != 8 {
		t.Errorf("self usage = %+v, want 2 msgs / 8 bytes out", self)
	}
	in := ledger[peer]
	if in.MsgsIn != 1 || in.BytesIn != 7 {
		t.Errorf("peer usage = %+v, want 1 msg / 7 bytes in", in)
	}
}

func TestTransparentOnWire(t *testing.T) {
	h := layertest.New(t, account.New)
	h.InjectDown(core.NewCast(message.New([]byte("x"))))
	if h.LastDown().Msg.HeaderLen() != 0 {
		t.Error("ACCOUNT pushed header bytes")
	}
}
