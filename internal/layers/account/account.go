// Package account implements the accounting layer (Figure 1: "keeping
// track of usage"). Transparent on the wire, it meters messages and
// bytes per peer in both directions; a billing or quota system reads
// the ledger through the focus downcall.
package account

import (
	"fmt"
	"sort"
	"strings"

	"horus/internal/core"
)

// Usage is the metered traffic for one peer.
type Usage struct {
	MsgsIn   int
	BytesIn  int
	MsgsOut  int
	BytesOut int
}

// Account is one accounting layer instance.
type Account struct {
	core.Base
	ledger map[core.EndpointID]*Usage
}

// New returns an accounting layer.
func New() core.Layer { return &Account{} }

// Name implements core.Layer.
func (a *Account) Name() string { return "ACCOUNT" }

// Ledger returns a snapshot of per-peer usage.
func (a *Account) Ledger() map[core.EndpointID]Usage {
	out := make(map[core.EndpointID]Usage, len(a.ledger))
	for k, v := range a.ledger {
		out[k] = *v
	}
	return out
}

// Init implements core.Layer.
func (a *Account) Init(c *core.Context) error {
	if err := a.Base.Init(c); err != nil {
		return err
	}
	a.ledger = make(map[core.EndpointID]*Usage)
	return nil
}

func (a *Account) usageFor(e core.EndpointID) *Usage {
	u := a.ledger[e]
	if u == nil {
		u = &Usage{}
		a.ledger[e] = u
	}
	return u
}

// Down implements core.Layer.
func (a *Account) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend:
		u := a.usageFor(a.Ctx.Self())
		u.MsgsOut++
		u.BytesOut += ev.Msg.Len()
	case core.DDump:
		ev.Dump = append(ev.Dump, "ACCOUNT: "+a.summary())
	}
	a.Ctx.Down(ev)
}

// Up implements core.Layer.
func (a *Account) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend:
		u := a.usageFor(ev.Source)
		u.MsgsIn++
		u.BytesIn += ev.Msg.Len()
	}
	a.Ctx.Up(ev)
}

func (a *Account) summary() string {
	ids := make([]core.EndpointID, 0, len(a.ledger))
	for id := range a.ledger {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Older(ids[j]) })
	var parts []string
	for _, id := range ids {
		u := a.ledger[id]
		parts = append(parts, fmt.Sprintf("%s in=%d/%dB out=%d/%dB",
			id, u.MsgsIn, u.BytesIn, u.MsgsOut, u.BytesOut))
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, "; ")
}
