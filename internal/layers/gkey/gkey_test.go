package gkey_test

import (
	"bytes"
	"testing"

	"horus/internal/core"
	"horus/internal/layers/gkey"
	"horus/internal/layertest"
	"horus/internal/message"
)

var master = []byte("the group long-term master secret")

func setup(t *testing.T) *layertest.Harness {
	t.Helper()
	h := layertest.New(t, gkey.New(master))
	h.InstallView(h.Self(), layertest.ID("p", 2))
	h.Reset()
	return h
}

func TestEncryptDecryptWithinView(t *testing.T) {
	h := setup(t)
	h.InjectDown(core.NewCast(message.New([]byte("rekeyed secret"))))
	sent := h.LastDown()
	h.InjectUp(&core.Event{Type: core.UCast, Msg: sent.Msg.Clone(), Source: layertest.ID("p", 2)})
	got := h.LastUp()
	if got == nil || string(got.Msg.Body()) != "rekeyed secret" {
		t.Fatalf("round trip failed: %v", got)
	}
}

func TestCiphertextHidden(t *testing.T) {
	h := setup(t)
	plain := []byte("very recognizable plaintext content here")
	h.InjectDown(core.NewCast(message.New(plain)))
	if bytes.Contains(h.LastDown().Msg.Marshal(), plain[:16]) {
		t.Fatal("plaintext on the wire")
	}
}

func TestRekeyOnViewChange(t *testing.T) {
	h := setup(t)
	// Capture ciphertext under view 1's key.
	h.InjectDown(core.NewCast(message.New([]byte("old view traffic"))))
	old := h.LastDown().Msg.Clone()

	// View 2 installs: the layer rekeys.
	v2 := core.NewView(core.ViewID{Seq: 2, Coord: h.Self()}, "test",
		[]core.EndpointID{h.Self()})
	h.InjectUp(&core.Event{Type: core.UView, View: v2})
	l := h.G.Focus("GKEY").(*gkey.Gkey)
	if l.Stats().Rekeys != 2 { // view 1 + view 2
		t.Fatalf("Rekeys = %d, want 2", l.Stats().Rekeys)
	}

	// Old-view ciphertext no longer decrypts.
	h.Reset()
	h.InjectUp(&core.Event{Type: core.UCast, Msg: old, Source: layertest.ID("p", 2)})
	for _, ev := range h.UpOfType(core.UCast) {
		if string(ev.Msg.Body()) == "old view traffic" {
			t.Fatal("old view's traffic decrypted under the new key")
		}
	}
}

func TestSameViewSameKeyAcrossMembers(t *testing.T) {
	// Two independent instances sharing the master derive the same key
	// from the same view: one's ciphertext decrypts at the other.
	a := layertest.New(t, gkey.New(master))
	b := layertest.New(t, gkey.New(master))
	v := core.NewView(core.ViewID{Seq: 7, Coord: layertest.ID("c", 1)}, "g",
		[]core.EndpointID{layertest.ID("c", 1)})
	a.InjectUp(&core.Event{Type: core.UView, View: v})
	b.InjectUp(&core.Event{Type: core.UView, View: v})

	a.InjectDown(core.NewCast(message.New([]byte("cross"))))
	ct := a.LastDown().Msg.Clone()
	b.InjectUp(&core.Event{Type: core.UCast, Msg: ct, Source: layertest.ID("c", 1)})
	got := b.LastUp()
	if got == nil || string(got.Msg.Body()) != "cross" {
		t.Fatalf("cross-member decryption failed: %v", got)
	}
}

func TestCastBeforeFirstViewErrors(t *testing.T) {
	h := layertest.New(t, gkey.New(master))
	h.InjectDown(core.NewCast(message.New([]byte("too soon"))))
	if got := h.UpOfType(core.USystemError); len(got) != 1 {
		t.Fatalf("no SYSTEM_ERROR before the first key: %v", got)
	}
	if got := h.DownOfType(core.DCast); len(got) != 0 {
		t.Fatal("plaintext escaped before the first key")
	}
}

func TestEmptyMasterFailsInit(t *testing.T) {
	h := layertest.New(t, gkey.New(master))
	ep := h.Net.NewEndpoint("x")
	if _, err := ep.Join("g", core.StackSpec{gkey.New(nil)}, nil); err == nil {
		t.Fatal("empty master accepted")
	}
}
