// Package gkey implements a group-keying layer: the §11 remark that
// the Horus security architecture "combines security features with
// fault-tolerance" made concrete. Instead of one static key (package
// crypt), GKEY derives a fresh traffic key for every view from a
// pre-shared group master secret and the view identity:
//
//	K(view) = SHA-256(master || view coordinator || view sequence)
//
// Because the view identity is agreed by the membership layer below,
// every member of a view derives the identical key with no extra
// key-agreement protocol — and a member excluded by a view change
// cannot decrypt traffic of any later view it was not admitted to
// (it never learns the new view identity as a member, and without the
// master it cannot enumerate keys... the master is the long-term
// group credential; exclusion protects against *non-members* who
// captured an old traffic key, the classical rationale for rekeying
// on membership change).
//
// GKEY sits above the membership layer (it consumes VIEW upcalls) and
// encrypts whole message contents with AES-CTR under the current view
// key. Messages from other epochs fail decryption and are dropped —
// which doubles as a cryptographic enforcement of the epoch discipline.
//
// Properties: requires P9, P15 (agreed views); inherits the rest.
package gkey

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"horus/internal/core"
	"horus/internal/message"
)

// Gkey is one group-keying layer instance.
type Gkey struct {
	core.Base
	master []byte
	block  cipher.Block // derived for the current view
	keyGen uint64       // view seq the key was derived from
	stats  Stats
}

// Stats counts keying activity.
type Stats struct {
	Rekeys    int
	Encrypted int
	Decrypted int
	Rejected  int
}

// New returns a factory for group-keying layers sharing the master
// secret.
func New(master []byte) core.Factory {
	m := append([]byte(nil), master...)
	return func() core.Layer { return &Gkey{master: m} }
}

// Name implements core.Layer.
func (g *Gkey) Name() string { return "GKEY" }

// Stats returns a snapshot of the layer's counters.
func (g *Gkey) Stats() Stats { return g.stats }

// Init implements core.Layer.
func (g *Gkey) Init(c *core.Context) error {
	if err := g.Base.Init(c); err != nil {
		return err
	}
	if len(g.master) == 0 {
		return fmt.Errorf("gkey: empty master secret")
	}
	return nil
}

// rekey derives the traffic key for view v.
func (g *Gkey) rekey(v *core.View) error {
	h := sha256.New()
	h.Write(g.master)
	h.Write([]byte(v.ID.Coord.Site))
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], v.ID.Coord.Birth)
	binary.BigEndian.PutUint64(buf[8:], v.ID.Seq)
	h.Write(buf[:])
	block, err := aes.NewCipher(h.Sum(nil)) // AES-256 under the digest
	if err != nil {
		return err
	}
	g.block = block
	g.keyGen = v.ID.Seq
	g.stats.Rekeys++
	return nil
}

// Down implements core.Layer.
func (g *Gkey) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend:
		if g.block == nil {
			g.Ctx.Up(&core.Event{Type: core.USystemError,
				Reason: "gkey: transmission before the first view key"})
			return
		}
		plain := ev.Msg.Marshal()
		nonce := make([]byte, aes.BlockSize)
		if _, err := rand.Read(nonce); err != nil {
			g.Ctx.Up(&core.Event{Type: core.USystemError, Reason: "gkey: nonce: " + err.Error()})
			return
		}
		out := make([]byte, len(plain))
		cipher.NewCTR(g.block, nonce).XORKeyStream(out, plain)
		m := message.New(out)
		m.Push(nonce)
		ev.Msg = m
		g.stats.Encrypted++
		g.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("GKEY: gen=%d rekeys=%d enc=%d dec=%d rej=%d",
			g.keyGen, g.stats.Rekeys, g.stats.Encrypted, g.stats.Decrypted, g.stats.Rejected))
		g.Ctx.Down(ev)
	default:
		g.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (g *Gkey) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend:
		if g.block == nil || ev.Msg.HeaderLen() < aes.BlockSize {
			g.stats.Rejected++
			return
		}
		nonce := append([]byte(nil), ev.Msg.Pop(aes.BlockSize)...)
		body := ev.Msg.Body()
		plain := make([]byte, len(body))
		cipher.NewCTR(g.block, nonce).XORKeyStream(plain, body)
		inner, err := message.Unmarshal(plain)
		if err != nil {
			// Wrong key (another view's traffic) or damage: drop.
			g.stats.Rejected++
			return
		}
		ev.Msg = inner
		g.stats.Decrypted++
		g.Ctx.Up(ev)
	case core.UView:
		if err := g.rekey(ev.View); err != nil {
			g.Ctx.Up(&core.Event{Type: core.USystemError, Reason: "gkey: " + err.Error()})
			return
		}
		g.Ctx.Up(ev)
	default:
		g.Ctx.Up(ev)
	}
}

// Transparent implements core.Skipper: GKEY acts on transmissions and
// on view installs (rekeying); the rest is skipped (§10 item 1).
func (g *Gkey) Transparent(t core.EventType, down bool) bool {
	if down {
		switch t {
		case core.DCast, core.DSend, core.DDump:
			return false
		}
		return true
	}
	switch t {
	case core.UCast, core.USend, core.UView:
		return false
	}
	return true
}
