package sign_test

import (
	"testing"

	"horus/internal/core"
	"horus/internal/layers/sign"
	"horus/internal/layertest"
	"horus/internal/message"
)

var key = []byte("a 32 byte demo key..............")

func TestSignVerifyRoundTrip(t *testing.T) {
	h := layertest.New(t, sign.New(key))
	h.InjectDown(core.NewCast(message.New([]byte("secret-free payload"))))
	sent := h.LastDown()
	if sent.Msg.HeaderLen() != sign.TagSize {
		t.Fatalf("tag = %d bytes, want %d", sent.Msg.HeaderLen(), sign.TagSize)
	}
	h.InjectUp(&core.Event{Type: core.UCast, Msg: sent.Msg.Clone(), Source: layertest.ID("peer", 2)})
	if got := h.LastUp(); got == nil || string(got.Msg.Body()) != "secret-free payload" {
		t.Fatalf("signed message not delivered: %v", got)
	}
}

func TestSignRejectsTamperedContent(t *testing.T) {
	h := layertest.New(t, sign.New(key))
	h.InjectDown(core.NewCast(message.New([]byte("payload"))))
	m := h.LastDown().Msg.Clone()
	m.Body()[0] ^= 1
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: layertest.ID("peer", 2)})
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatal("tampered message delivered")
	}
}

func TestSignRejectsForgedTag(t *testing.T) {
	// A message "signed" under a different key must be rejected: the
	// §2 impersonation scenario.
	attacker := layertest.New(t, sign.New([]byte("the attacker key................")))
	attacker.InjectDown(core.NewCast(message.New([]byte("i am a member, honest"))))
	forged := attacker.LastDown().Msg.Clone()

	h := layertest.New(t, sign.New(key))
	h.InjectUp(&core.Event{Type: core.UCast, Msg: forged, Source: layertest.ID("peer", 2)})
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatal("forged message delivered")
	}
	s := h.G.Focus("SIGN").(*sign.Sign)
	if s.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", s.Stats().Rejected)
	}
}

func TestSignRejectsTruncated(t *testing.T) {
	h := layertest.New(t, sign.New(key))
	h.InjectUp(&core.Event{Type: core.UCast, Msg: message.New([]byte("short")), Source: layertest.ID("peer", 2)})
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatal("tagless message delivered")
	}
}

func TestSignEmptyKeyFailsInit(t *testing.T) {
	net := layertest.New(t, sign.New(key)).Net
	ep := net.NewEndpoint("x")
	if _, err := ep.Join("g", core.StackSpec{sign.New(nil)}, nil); err == nil {
		t.Fatal("empty key accepted")
	}
}
