// Package sign implements the signing layer of the paper's §2
// protocol-class example: a *cryptographic* checksum, "dependent on a
// secret key, making it impossible for a malignant intruder to
// impersonate a member process of the application".
//
// The layer appends an HMAC-SHA-256 tag computed over the message's
// wire form under a group-shared key; receivers recompute and drop
// forgeries. It subclasses the checksum idea exactly as the paper's
// class hierarchy describes.
package sign

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"

	"horus/internal/core"
)

// TagSize is the pushed MAC size in bytes.
const TagSize = sha256.Size

// Sign is one signing layer instance.
type Sign struct {
	core.Base
	key   []byte
	stats Stats
}

// Stats counts signing activity.
type Stats struct {
	Signed   int
	Verified int
	Rejected int // messages dropped for MAC mismatch
}

// New returns a factory for signing layers sharing the given secret
// key. All members of a group must be configured with the same key
// (key distribution is its own protocol type in Figure 1; here keys
// are pre-shared).
func New(key []byte) core.Factory {
	k := append([]byte(nil), key...)
	return func() core.Layer { return &Sign{key: k} }
}

// Name implements core.Layer.
func (s *Sign) Name() string { return "SIGN" }

// Stats returns a snapshot of the layer's counters.
func (s *Sign) Stats() Stats { return s.stats }

// Init implements core.Layer.
func (s *Sign) Init(c *core.Context) error {
	if err := s.Base.Init(c); err != nil {
		return err
	}
	if len(s.key) == 0 {
		return fmt.Errorf("sign: empty key")
	}
	return nil
}

func (s *Sign) mac(wire []byte) []byte {
	h := hmac.New(sha256.New, s.key)
	h.Write(wire)
	return h.Sum(nil)
}

// Down implements core.Layer.
func (s *Sign) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend, core.DLocate:
		ev.Msg.Push(s.mac(ev.Msg.Marshal()))
		s.stats.Signed++
		s.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("SIGN: signed=%d verified=%d rejected=%d",
			s.stats.Signed, s.stats.Verified, s.stats.Rejected))
		s.Ctx.Down(ev)
	default:
		s.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (s *Sign) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend, core.ULocate:
		if ev.Msg.HeaderLen() < TagSize {
			s.stats.Rejected++
			return
		}
		tag := append([]byte(nil), ev.Msg.Pop(TagSize)...)
		if !hmac.Equal(tag, s.mac(ev.Msg.Marshal())) {
			s.stats.Rejected++
			return
		}
		s.stats.Verified++
		s.Ctx.Up(ev)
	default:
		s.Ctx.Up(ev)
	}
}

// Transparent implements core.Skipper: SIGN acts only on
// message-bearing events (§10 item 1 layer skipping).
func (s *Sign) Transparent(t core.EventType, down bool) bool {
	if down {
		switch t {
		case core.DCast, core.DSend, core.DLocate, core.DDump:
			return false
		}
		return true
	}
	switch t {
	case core.UCast, core.USend, core.ULocate:
		return false
	}
	return true
}
