// Package mbrship implements the MBRSHIP layer (paper §5): group
// membership with the flush protocol, providing virtual synchrony.
//
// MBRSHIP "simulates an environment for the members of a group in
// which members can only fail (they cannot be slow or get
// disconnected) and messages do not get lost". Each member holds a
// view — an ordered list of members. Every member of the current view
// either accepts the same next view or is removed from it, and a
// message delivered in a view is delivered to all surviving members of
// that view before the next view installs.
//
// At the heart of the layer is the flush protocol (Figure 2). When a
// member crash is detected (a PROBLEM upcall from NAK, a flush
// downcall from the application, or a verdict from an external failure
// detector) the oldest surviving member of the oldest view becomes
// coordinator — an election that needs no messages. The coordinator
// broadcasts FLUSH; every member returns the messages that are not yet
// known to be stable (all members log all unstable messages), then
// replies FLUSH_OK and ignores further traffic from the failed
// members. Once all FLUSH_OK replies are in, the coordinator
// rebroadcasts the still-unstable messages and installs the new view.
// If members fail during the flush, a new round starts immediately.
//
// View merging (the merge downcall / MERGE_REQUEST upcall) joins two
// concurrent views: each side flushes its own view, then the contacted
// coordinator installs the union. Joining a group is the degenerate
// case — a fresh endpoint starts in a singleton view and merges in
// (paper §11: "member join (actually, view merge)").
//
// MBRSHIP relies only on reliable FIFO channels from the layer below
// (NAK). Properties: requires P3, P4, P10, P11, P12; provides P8, P9
// (virtual synchrony) and P15 (consistent views).
package mbrship

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/wire"
)

// Wire kinds.
const (
	kData       = 1  // multicast data {epoch, seq}
	kSendData   = 2  // subset send pass-through
	kSuspect    = 3  // suspicion report to coordinator {failed}
	kFlush      = 4  // coordinator starts flush {round, failed}
	kFwd        = 5  // unstable message forward {origin, epoch, seq, wire}
	kFlushOK    = 6  // member completed flushing {round}
	kView       = 7  // coordinator installs view {view}
	kGossip     = 8  // stability gossip {origins, delivered counts}
	kMergeReq   = 9  // merge request {requester view}
	kMergeGrant = 10 // merge granted
	kMergeDeny  = 11 // merge denied {reason}
	kMergeReady = 12 // requester side flushed {survivors}
	kLeave      = 13 // voluntary departure announcement
	kPoolMark   = 14 // end-of-rebroadcast marker {round}, merge flushes
	kPoolAck    = 15 // survivor confirms pool receipt {round}
	kViewNack   = 16 // member refuses a view it cannot install {view id}
)

// states of the layer.
const (
	stNormal = iota
	stFlushing
	stMergingOut // we requested a merge and are flushing our view
	stMergingIn  // we granted a merge and are flushing our view
)

// Defaults; override with Options.
const (
	defaultGossipPeriod = 100 * time.Millisecond
	defaultFlushTimeout = 2 * time.Second
	defaultMergeRetry   = 500 * time.Millisecond

	// maxMergeTries bounds retry-timer firings per merge attempt
	// before the requester gives up on an unresponsive target.
	maxMergeTries = 5

	// maxFutureBuffer bounds messages held because they were sent in a
	// view newer than ours (the sender outran the view announcement).
	maxFutureBuffer = 256

	// maxFwdStash bounds forwards held until the view announcement
	// that decides whether their flush is the one we follow.
	maxFwdStash = 4096
)

// Option configures the layer at construction.
type Option func(*Mbrship)

// WithGossipPeriod sets the stability-gossip interval.
func WithGossipPeriod(d time.Duration) Option { return func(m *Mbrship) { m.gossipPeriod = d } }

// WithFlushTimeout sets how long a member waits for flush progress
// before suspecting the flush coordinator.
func WithFlushTimeout(d time.Duration) Option { return func(m *Mbrship) { m.flushTimeout = d } }

// WithMergeRetry sets the retry interval for unanswered merge
// requests. Zero disables retries.
func WithMergeRetry(d time.Duration) Option { return func(m *Mbrship) { m.mergeRetry = d } }

// WithManualMergeGrant makes the layer surface MERGE_REQUEST upcalls
// and wait for merge_granted / merge_denied downcalls, instead of
// granting automatically.
func WithManualMergeGrant() Option { return func(m *Mbrship) { m.manualGrant = true } }

// WithExternalSuspicions makes the layer ignore PROBLEM upcalls from
// the layer below; only flush downcalls (e.g. fed by an external
// failure-detection service, §5) introduce suspicions.
func WithExternalSuspicions() Option { return func(m *Mbrship) { m.externalFD = true } }

// WithoutFlush disables unstable-message logging and forwarding: the
// layer still agrees on views (property P15) but delivers only
// *semi*-synchrony (P8) — messages in flight at a view change may be
// lost for some survivors. This is the BMS decomposition of Table 3;
// stack a FLUSH layer above to restore full virtual synchrony.
func WithoutFlush() Option { return func(m *Mbrship) { m.noFlush = true } }

// WithAppFlushOK makes the layer wait for a flush_ok downcall before
// consenting to a flush, instead of consenting automatically. A layer
// above (FLUSH, VSS) or the application uses the window between the
// FLUSH upcall and its flush_ok to redistribute unstable messages.
func WithAppFlushOK() Option { return func(m *Mbrship) { m.appFlushOK = true } }

// WithName overrides the layer's protocol name (the BMS package
// presents a renamed MBRSHIP variant).
func WithName(name string) Option { return func(m *Mbrship) { m.name = name } }

// WithPrimaryPartition enables the Isis-style primary-partition
// progress restriction (paper §9): among concurrent views of a group
// whose full membership counts total endpoints, only a view holding a
// strict majority is *primary*. Views still form in minority
// partitions (so healing by merge works unchanged), but VIEW upcalls
// carry Primary=false and application casts are deferred until the
// member is back in a primary view — the minority makes no progress.
// The default (total = 0) treats every view as primary, the paper's
// extended-virtual-synchrony configuration.
func WithPrimaryPartition(total int) Option { return func(m *Mbrship) { m.quorumOf = total } }

// New returns an MBRSHIP layer with default configuration.
func New() core.Layer { return newMbrship() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		m := newMbrship()
		for _, o := range opts {
			o(m)
		}
		return m
	}
}

func newMbrship() *Mbrship {
	return &Mbrship{
		gossipPeriod: defaultGossipPeriod,
		flushTimeout: defaultFlushTimeout,
		mergeRetry:   defaultMergeRetry,
	}
}

// logEntry is one unstable message retained for flushing.
type logEntry struct {
	seq uint64
	msg *message.Message // content at MBRSHIP level (upper headers + body)
}

// Mbrship is one MBRSHIP layer instance.
type Mbrship struct {
	core.Base

	view  *core.View
	epoch uint64 // view.ID.Seq shorthand

	state int

	// Data-path state, reset at each view installation.
	castSeq   uint64                                         // my casts in this view
	delivered map[core.EndpointID]uint64                     // contiguous per-origin delivery count
	sparse    map[core.MsgID]bool                            // fwd-delivered beyond the contiguous prefix
	log       map[core.EndpointID][]logEntry                 // unstable messages per origin
	ackKnown  map[core.EndpointID]map[core.EndpointID]uint64 // member -> origin -> delivered

	// Failure handling.
	suspects map[core.EndpointID]bool

	// Flush state.
	flushCoord    core.EndpointID
	flushRound    uint64
	roundFailed   string                     // failure-set signature of the current round
	answered      map[core.EndpointID]uint64 // highest round answered per coordinator
	okFrom        map[core.EndpointID]bool
	fwdPool       map[core.MsgID]fwdEntry
	flushForMerge bool
	flushCancel   func()
	pendingCasts  []*message.Message             // application casts deferred during flush
	future        []*core.Event                  // data from views we have not installed yet
	fwdStash      map[core.EndpointID][]fwdEntry // forwards per sender, awaiting that sender's view
	stashSize     int

	// Merge state.
	mergeTarget     core.EndpointID // outgoing: contacted coordinator
	mergePeer       []core.EndpointID
	mergePeerView   core.ViewID              // incoming: the view the requester side sealed
	mergePeerSealer core.EndpointID          // incoming: the coordinator that sealed it
	mergeReady      bool                     // incoming: requester flushed; outgoing: grant received
	ownFlushDone    bool                     // incoming/outgoing: our side's flush finished
	poolWait        map[core.EndpointID]bool // outgoing: survivors owing a pool ack
	mergeTries      int                      // retry-timer firings for the current attempt
	mergeCancel     func()
	pendingReqs     []*core.View // manual grant: requests awaiting the application

	// Config.
	gossipPeriod time.Duration
	flushTimeout time.Duration
	mergeRetry   time.Duration
	manualGrant  bool
	externalFD   bool
	noFlush      bool
	appFlushOK   bool
	name         string
	quorumOf     int // primary-partition mode: total membership; 0 = off

	// Deferred flush consent (appFlushOK mode): the round we owe a
	// flush_ok for, or nil.
	consentCoord core.EndpointID
	consentRound uint64
	consentOwed  bool

	gossipCancel func()
	destroyed    bool
	stats        Stats

	// fastLocal carries the logged copy of the cast in flight from the
	// compiled plan's Fill hook to its Post hook (self-delivery). The
	// endpoint executor runs each cast to completion before the next, so
	// a single slot cannot be clobbered.
	fastLocal *message.Message
}

// fwdEntry is one pooled unstable message at the flush coordinator.
type fwdEntry struct {
	origin core.EndpointID
	seq    uint64
	wire   []byte
}

// Stats counts membership activity.
type Stats struct {
	ViewsInstalled int
	FlushRounds    int
	FwdsSent       int
	FwdsDelivered  int
	StaleDropped   int // messages from old epochs or non-members dropped
	ViewsRefused   int // announced views rejected for a predecessor mismatch
	MergesGranted  int
	MergesDenied   int
}

// Name implements core.Layer.
func (m *Mbrship) Name() string {
	if m.name != "" {
		return m.name
	}
	return "MBRSHIP"
}

// Stats returns a snapshot of the layer's counters.
func (m *Mbrship) Stats() Stats { return m.stats }

// View returns the current view (for Focus-based inspection).
func (m *Mbrship) View() *core.View { return m.view }

// Init implements core.Layer: the member starts in a singleton view
// and begins gossiping. The initial view installs via a zero-delay
// timer so the application's Join call has returned by then.
func (m *Mbrship) Init(c *core.Context) error {
	if err := m.Base.Init(c); err != nil {
		return err
	}
	m.delivered = make(map[core.EndpointID]uint64)
	m.sparse = make(map[core.MsgID]bool)
	m.log = make(map[core.EndpointID][]logEntry)
	m.ackKnown = make(map[core.EndpointID]map[core.EndpointID]uint64)
	m.suspects = make(map[core.EndpointID]bool)
	m.answered = make(map[core.EndpointID]uint64)
	c.SetTimer(0, func() {
		v := core.NewView(core.ViewID{Seq: 1, Coord: c.Self()}, c.GroupAddr(),
			[]core.EndpointID{c.Self()})
		m.install(v)
	})
	if m.gossipPeriod > 0 {
		m.gossipCancel = c.SetTimer(m.gossipPeriod, m.gossipTick)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Downcalls

// Down implements core.Layer.
func (m *Mbrship) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		m.castDown(ev.Msg)
	case core.DSend:
		ev.Msg.PushUint8(kSendData)
		m.Ctx.Down(ev)
	case core.DFlush:
		for _, f := range ev.Failed {
			m.suspect(f)
		}
		m.maybeStartFlush(false)
	case core.DFlushOK:
		m.appConsents()
	case core.DMerge:
		m.startMerge(ev.Contact)
	case core.DMergeGranted:
		m.grantPending(ev.Contact, true, "")
	case core.DMergeDenied:
		m.grantPending(ev.Contact, false, ev.Reason)
	case core.DLeave:
		m.announceLeave()
		m.Ctx.Down(ev)
	case core.DDestroy:
		m.shutdown()
		m.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, "MBRSHIP: "+m.dumpLine())
		m.Ctx.Down(ev)
	default:
		m.Ctx.Down(ev)
	}
}

// Primary reports whether the current view may make progress: always
// true unless the primary-partition restriction is on and this view
// lacks a strict majority of the configured total membership.
func (m *Mbrship) Primary() bool {
	if m.quorumOf <= 0 {
		return true
	}
	return m.view != nil && m.view.Size()*2 > m.quorumOf
}

// castDown sends (or defers) an application multicast.
func (m *Mbrship) castDown(msg *message.Message) {
	if m.view == nil || m.state != stNormal || !m.Primary() {
		// New transmissions are blocked while a view change is in
		// progress — or, under the primary-partition restriction,
		// while this member sits in a minority partition. They go out
		// in the next (primary) view.
		m.pendingCasts = append(m.pendingCasts, msg)
		return
	}
	m.castSeq++
	seq := m.castSeq
	// Log the message before pushing our header: if we survive a
	// flush, our own unstable messages must be forwardable.
	local := msg.Clone()
	m.appendLog(m.Ctx.Self(), seq, local)
	// The sender is a destination of its own multicast: deliver
	// locally at once. The network copy that loops back is then
	// deduplicated like any other.
	m.recordDelivered(m.Ctx.Self(), seq)
	msg.PushUint64(seq)
	m.Ctx.Tracef("mbrship %s: cast seq=%d epoch=%d", m.Ctx.Self(), seq, m.epoch)
	m.pushViewTag(msg)
	msg.PushUint8(kData)
	m.Ctx.Down(&core.Event{Type: core.DCast, Msg: msg})
	m.Ctx.Up(&core.Event{Type: core.UCast, Msg: local.Clone(), Source: m.Ctx.Self()})
}

// CompileCast implements core.CastCompiler. The compiled path covers
// only the unblocked steady state — the Ready gate is exactly the
// deferral condition of castDown, so flushes, minority partitions, and
// the pre-view window all fall back to the reference path and land in
// pendingCasts as before. The header is [kData][epoch][coordinator
// id][seq], whose width varies with the coordinator's site name, hence
// WidthFn. Fill performs the same bookkeeping as castDown (log, local
// stability, trace) and stashes the logged copy for the Post hook,
// which replays the reference path's immediate self-delivery after the
// wire copy has left.
func (m *Mbrship) CompileCast() (core.CompiledCast, bool) {
	return core.CompiledCast{
		Ready: func(ev *core.Event) bool {
			return m.view != nil && m.state == stNormal && m.Primary()
		},
		WidthFn: func(ev *core.Event) int {
			// [kData u8][epoch u64][birth u64][sitelen u32][site][seq u64]
			return 29 + len(m.view.ID.Coord.Site)
		},
		Fill: func(f *core.CastFrame) {
			m.castSeq++
			seq := m.castSeq
			local := message.FromParts(f.Hdr, f.Body)
			m.appendLog(m.Ctx.Self(), seq, local)
			m.recordDelivered(m.Ctx.Self(), seq)
			m.Ctx.Tracef("mbrship %s: cast seq=%d epoch=%d", m.Ctx.Self(), seq, m.epoch)
			coord := m.view.ID.Coord
			b := f.Own
			b[0] = kData
			binary.BigEndian.PutUint64(b[1:], m.epoch)
			binary.BigEndian.PutUint64(b[9:], coord.Birth)
			binary.BigEndian.PutUint32(b[17:], uint32(len(coord.Site)))
			copy(b[21:], coord.Site)
			binary.BigEndian.PutUint64(b[21+len(coord.Site):], seq)
			m.fastLocal = local
		},
		Post: func(ev *core.Event) {
			local := m.fastLocal
			m.fastLocal = nil
			m.Ctx.Up(&core.Event{Type: core.UCast, Msg: local.Clone(), Source: m.Ctx.Self()})
		},
	}, true
}

// ---------------------------------------------------------------------------
// Upcalls

// Up implements core.Layer.
func (m *Mbrship) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend:
		kind := ev.Msg.PopUint8()
		m.dispatch(kind, ev)
	case core.UProblem:
		if !m.externalFD {
			m.suspect(ev.Source)
			m.maybeStartFlush(false)
		}
		m.Ctx.Up(ev)
	case core.ULostMessage:
		// A lost message at this level means NAK's retransmission
		// buffer was trimmed. It is usually pre-join history a new
		// member asked about (harmless: old-epoch data is dropped
		// here anyway), so it is reported upward but not treated as a
		// failure; genuinely silent members are caught by PROBLEM.
		m.Ctx.Up(ev)
	default:
		m.Ctx.Up(ev)
	}
}

func (m *Mbrship) dispatch(kind uint8, ev *core.Event) {
	switch kind {
	case kData:
		m.receiveData(ev)
	case kSendData:
		m.Ctx.Up(ev)
	case kSuspect:
		epoch, coord := popViewTag(ev.Msg)
		list := wire.PopIDList(ev.Msg)
		if !m.inCurrentView(epoch, coord) {
			// A suspicion from a previous view — possibly seconds old,
			// replayed by NAK retransmission after a partition healed —
			// or from a concurrent same-seq view. Acting on it would
			// tear a freshly merged view apart.
			m.stats.StaleDropped++
			return
		}
		for _, f := range list {
			m.suspect(f)
		}
		m.maybeStartFlush(false)
	case kFlush:
		m.receiveFlush(ev)
	case kFwd:
		m.receiveFwd(ev)
	case kFlushOK:
		m.receiveFlushOK(ev)
	case kView:
		m.receiveView(ev)
	case kGossip:
		m.receiveGossip(ev)
	case kMergeReq:
		m.receiveMergeReq(ev)
	case kMergeGrant:
		m.receiveMergeGrant(ev)
	case kMergeDeny:
		m.receiveMergeDeny(ev)
	case kMergeReady:
		m.receiveMergeReady(ev)
	case kPoolMark:
		m.receivePoolMark(ev)
	case kPoolAck:
		m.receivePoolAck(ev)
	case kViewNack:
		m.receiveViewNack(ev)
	case kLeave:
		if epoch, coord := popViewTag(ev.Msg); !m.inCurrentView(epoch, coord) {
			m.stats.StaleDropped++
			return
		}
		m.suspect(ev.Source)
		m.Ctx.Up(&core.Event{Type: core.ULeave, Source: ev.Source})
		m.maybeStartFlush(false)
	}
}

// receiveData delivers an in-view multicast, enforcing epoch and
// membership checks ("the members ignore messages that they may
// receive from supposedly failed members", §5).
func (m *Mbrship) receiveData(ev *core.Event) {
	epoch, coord := popViewTag(ev.Msg)
	seq := ev.Msg.PopUint64()
	src := ev.Source
	if m.view != nil && epoch > m.epoch {
		// Sent in a view we have not installed yet: the view
		// announcement and the data travel on different FIFO channels,
		// so a prompt sender can outrun the coordinator's kView. Hold
		// the message until our view catches up.
		if len(m.future) < maxFutureBuffer {
			ev.Msg.PushUint64(seq) // restore the header for replay
			wire.PushEndpointID(ev.Msg, coord)
			ev.Msg.PushUint64(epoch)
			m.future = append(m.future, ev)
		} else {
			m.stats.StaleDropped++
		}
		return
	}
	if !m.inCurrentView(epoch, coord) || !m.view.Contains(src) || m.suspects[src] {
		m.stats.StaleDropped++
		return
	}
	if m.isDelivered(src, seq) {
		return
	}
	m.appendLog(src, seq, ev.Msg.Clone())
	m.recordDelivered(src, seq)
	m.Ctx.Tracef("mbrship %s: deliver %s/%d in %v", m.Ctx.Self(), src, seq, m.view.ID)
	m.Ctx.Up(ev)
}

// isDelivered reports whether (src, seq) was already delivered in this
// epoch, via the contiguous prefix or a flush forward.
func (m *Mbrship) isDelivered(src core.EndpointID, seq uint64) bool {
	if seq <= m.delivered[src] {
		return true
	}
	return m.sparse[core.MsgID{Origin: src, Seq: seq}]
}

// recordDelivered advances the per-origin delivery state.
func (m *Mbrship) recordDelivered(src core.EndpointID, seq uint64) {
	id := core.MsgID{Origin: src, Seq: seq}
	m.sparse[id] = true
	for m.sparse[core.MsgID{Origin: src, Seq: m.delivered[src] + 1}] {
		m.delivered[src]++
		delete(m.sparse, core.MsgID{Origin: src, Seq: m.delivered[src]})
	}
}

// appendLog retains an unstable message for future flushes. In BMS
// mode (WithoutFlush) nothing is retained.
func (m *Mbrship) appendLog(origin core.EndpointID, seq uint64, msg *message.Message) {
	if m.noFlush {
		return
	}
	m.log[origin] = append(m.log[origin], logEntry{seq: seq, msg: msg})
}

// ---------------------------------------------------------------------------
// Suspicion and flush

// suspect marks an endpoint faulty. Suspicions about non-members are
// ignored.
func (m *Mbrship) suspect(e core.EndpointID) {
	if m.view == nil || !m.view.Contains(e) || e == m.Ctx.Self() {
		return
	}
	if !m.suspects[e] {
		m.Ctx.Tracef("mbrship %s: suspecting %s", m.Ctx.Self(), e)
	}
	m.suspects[e] = true
}

// survivors returns the current view minus suspects.
func (m *Mbrship) survivors() []core.EndpointID {
	if m.view == nil {
		return nil
	}
	out := make([]core.EndpointID, 0, len(m.view.Members))
	for _, e := range m.view.Members {
		if !m.suspects[e] {
			out = append(out, e)
		}
	}
	return out
}

// coordinator returns the oldest surviving member — the paper's
// message-free election (§5 footnote 1).
func (m *Mbrship) coordinator() core.EndpointID {
	surv := m.survivors()
	if len(surv) == 0 {
		return m.Ctx.Self()
	}
	oldest := surv[0]
	for _, e := range surv[1:] {
		if e.Older(oldest) {
			oldest = e
		}
	}
	return oldest
}

// maybeStartFlush starts (or restarts) a flush round if this member is
// the coordinator and there is something to flush. forMerge starts a
// failure-free flush used to stabilize a view before merging.
func (m *Mbrship) maybeStartFlush(forMerge bool) {
	if m.view == nil {
		return
	}
	if !forMerge && len(m.suspects) == 0 {
		return
	}
	coord := m.coordinator()
	if coord != m.Ctx.Self() {
		// Not coordinator: report what we suspect and let the flush
		// timeout catch a dead coordinator.
		if len(m.suspects) > 0 {
			m.sendSuspects(coord)
			m.armFlushTimer()
		}
		return
	}
	// A round for this exact failure set is already under way; starting
	// another would only churn.
	if !forMerge && m.flushCoord == m.Ctx.Self() && m.state == stFlushing &&
		m.roundFailed == fmt.Sprint(m.failedList()) {
		return
	}
	m.startFlushRound(forMerge)
}

// sendSuspects reports our suspicion set to the coordinator.
func (m *Mbrship) sendSuspects(coord core.EndpointID) {
	ids := make([]core.EndpointID, 0, len(m.suspects))
	for e := range m.suspects {
		ids = append(ids, e)
	}
	sortIDs(ids)
	msg := message.New(nil)
	wire.PushIDList(msg, ids)
	m.pushViewTag(msg)
	msg.PushUint8(kSuspect)
	m.Ctx.Down(&core.Event{Type: core.DSend, Msg: msg, Dests: []core.EndpointID{coord}})
}

// startFlushRound begins a flush with this member as coordinator.
func (m *Mbrship) startFlushRound(forMerge bool) {
	m.flushRound++
	m.stats.FlushRounds++
	m.flushCoord = m.Ctx.Self()
	m.flushForMerge = m.flushForMerge || forMerge
	if m.state == stNormal {
		m.state = stFlushing
	}
	m.okFrom = map[core.EndpointID]bool{}
	if m.appFlushOK {
		// The coordinator owes itself a consent too: the layer above
		// must flush before the round can complete.
		m.consentCoord = m.Ctx.Self()
		m.consentRound = m.flushRound
		m.consentOwed = true
	} else {
		m.okFrom[m.Ctx.Self()] = true
	}
	if m.fwdPool == nil {
		m.fwdPool = make(map[core.MsgID]fwdEntry)
	}
	m.poolOwnLog()

	failed := m.failedList()
	m.roundFailed = fmt.Sprint(failed)
	m.Ctx.Tracef("mbrship %s: flush round %d, failed=%v", m.Ctx.Self(), m.flushRound, failed)
	m.Ctx.Up(&core.Event{Type: core.UFlush, Failed: failed})

	msg := message.New(nil)
	wire.PushIDList(msg, failed)
	msg.PushUint64(m.flushRound)
	m.pushViewTag(msg)
	msg.PushUint8(kFlush)
	dests := m.othersOf(m.survivors())
	if len(dests) > 0 {
		m.Ctx.Down(&core.Event{Type: core.DSend, Msg: msg, Dests: dests})
	}
	m.armFlushTimer()
	m.checkFlushComplete()
}

// failedList returns the sorted suspicion set.
func (m *Mbrship) failedList() []core.EndpointID {
	ids := make([]core.EndpointID, 0, len(m.suspects))
	for e := range m.suspects {
		ids = append(ids, e)
	}
	sortIDs(ids)
	return ids
}

// receiveFlush is a member's side of the flush: return all unstable
// messages, then consent.
func (m *Mbrship) receiveFlush(ev *core.Event) {
	epoch, viewCoord := popViewTag(ev.Msg)
	round := ev.Msg.PopUint64()
	failed := wire.PopIDList(ev.Msg)
	coord := ev.Source
	if !m.inCurrentView(epoch, viewCoord) {
		m.stats.StaleDropped++
		return
	}
	if !m.view.Contains(coord) {
		return
	}
	if m.answered[coord] >= round {
		return
	}
	m.answered[coord] = round
	for _, f := range failed {
		m.suspect(f)
	}
	if m.state == stNormal {
		m.state = stFlushing
	}
	m.flushCoord = coord
	// Record the owed consent *before* the FLUSH upcall: a layer
	// above may complete its own exchange and send flush_ok down
	// synchronously from within the upcall.
	if m.appFlushOK {
		m.consentCoord = coord
		m.consentRound = round
		m.consentOwed = true
	}
	m.forwardLog(coord, round)
	m.Ctx.Up(&core.Event{Type: core.UFlush, Failed: failed})
	if !m.appFlushOK {
		m.sendConsent(coord, round)
	}
	m.armFlushTimer()
}

// sendConsent sends the FLUSH_OK reply.
func (m *Mbrship) sendConsent(coord core.EndpointID, round uint64) {
	ok := message.New(nil)
	ok.PushUint64(round)
	ok.PushUint8(kFlushOK)
	m.Ctx.Down(&core.Event{Type: core.DSend, Msg: ok, Dests: []core.EndpointID{coord}})
}

// appConsents resolves a deferred flush consent (flush_ok downcall).
func (m *Mbrship) appConsents() {
	if !m.consentOwed {
		return
	}
	m.consentOwed = false
	if m.consentCoord == m.Ctx.Self() {
		if m.okFrom != nil {
			m.okFrom[m.Ctx.Self()] = true
			m.checkFlushComplete()
		}
		return
	}
	m.sendConsent(m.consentCoord, m.consentRound)
}

// forwardLog sends every logged unstable message to the coordinator,
// stamped with the flush round it answers so the coordinator can tell
// current answers from a previous round's in-flight stragglers.
func (m *Mbrship) forwardLog(coord core.EndpointID, round uint64) {
	origins := make([]core.EndpointID, 0, len(m.log))
	for o := range m.log {
		origins = append(origins, o)
	}
	sortIDs(origins)
	for _, origin := range origins {
		for _, entry := range m.log[origin] {
			fwd := message.New(entry.msg.Marshal())
			fwd.PushUint64(entry.seq)
			m.pushViewTag(fwd)
			fwd.PushUint64(round)
			wire.PushEndpointID(fwd, origin)
			fwd.PushUint8(kFwd)
			m.stats.FwdsSent++
			m.Ctx.Down(&core.Event{Type: core.DSend, Msg: fwd, Dests: []core.EndpointID{coord}})
		}
	}
}

// poolOwnLog adds the coordinator's own unstable log to the forward
// pool.
func (m *Mbrship) poolOwnLog() {
	for origin, entries := range m.log {
		for _, entry := range entries {
			id := core.MsgID{Origin: origin, Seq: entry.seq}
			if _, dup := m.fwdPool[id]; !dup {
				m.fwdPool[id] = fwdEntry{origin: origin, seq: entry.seq, wire: entry.msg.Marshal()}
			}
		}
	}
}

// receiveFwd handles an unstable-message forward. Only the active
// coordinator of the forward's round delivers it on the spot: it is
// about to decide the pool everyone moving to the next view must
// agree on, and anything it delivers goes into its own log, so a
// later capturing coordinator re-collects it — no delivery can leak
// past a flush. Every other forward — a rebroadcast running ahead of
// its view announcement, or a collection answer to a coordinatorship
// we have since ceded — is *stashed* per sender: delivering it now
// would adopt one flush's pool while we may yet install a different
// coordinator's successor, which is exactly how view agreement
// breaks. The stash is delivered when we install a view that sender
// sealed (receiveView) and discarded at any other installation.
func (m *Mbrship) receiveFwd(ev *core.Event) {
	origin := wire.PopEndpointID(ev.Msg)
	round := ev.Msg.PopUint64()
	epoch, coord := popViewTag(ev.Msg)
	seq := ev.Msg.PopUint64()
	if !m.inCurrentView(epoch, coord) {
		m.stats.StaleDropped++
		return
	}
	wireBytes := append([]byte(nil), ev.Msg.Body()...)
	if m.flushCoord == m.Ctx.Self() && m.okFrom != nil && round == m.flushRound {
		if m.fwdPool != nil {
			id := core.MsgID{Origin: origin, Seq: seq}
			if _, dup := m.fwdPool[id]; !dup {
				m.fwdPool[id] = fwdEntry{origin: origin, seq: seq, wire: wireBytes}
			}
		}
		m.deliverFwd(origin, seq, wireBytes, ev.Source)
		return
	}
	if !m.view.Contains(ev.Source) || m.stashSize >= maxFwdStash {
		m.stats.StaleDropped++
		return
	}
	if m.fwdStash == nil {
		m.fwdStash = make(map[core.EndpointID][]fwdEntry)
	}
	m.fwdStash[ev.Source] = append(m.fwdStash[ev.Source],
		fwdEntry{origin: origin, seq: seq, wire: wireBytes})
	m.stashSize++
}

// deliverFwd delivers one forwarded unstable message, deduplicated.
func (m *Mbrship) deliverFwd(origin core.EndpointID, seq uint64, wireBytes []byte, from core.EndpointID) {
	if m.isDelivered(origin, seq) {
		return
	}
	inner, err := message.Unmarshal(wireBytes)
	if err != nil {
		return
	}
	m.appendLog(origin, seq, inner.Clone())
	m.recordDelivered(origin, seq)
	m.stats.FwdsDelivered++
	m.Ctx.Tracef("mbrship %s: fwd-deliver %s/%d from %s in %v",
		m.Ctx.Self(), origin, seq, from, m.view.ID)
	m.Ctx.Up(&core.Event{Type: core.UCast, Msg: inner, Source: origin})
}

// receiveFlushOK collects consents at the coordinator.
func (m *Mbrship) receiveFlushOK(ev *core.Event) {
	round := ev.Msg.PopUint64()
	if m.flushCoord != m.Ctx.Self() || round != m.flushRound || m.okFrom == nil {
		return
	}
	m.okFrom[ev.Source] = true
	m.checkFlushComplete()
}

// checkFlushComplete finishes the flush once every survivor consented:
// rebroadcast the pooled unstable messages, then install the new view.
func (m *Mbrship) checkFlushComplete() {
	if m.flushCoord != m.Ctx.Self() || m.okFrom == nil {
		return
	}
	surv := m.survivors()
	for _, e := range surv {
		if !m.okFrom[e] {
			return
		}
	}
	// A merge flush waits for the requester side before installing.
	if m.state == stMergingIn && !m.mergeReady {
		m.ownFlushDone = true
		return
	}
	if m.state == stMergingOut {
		if !m.ownFlushDone {
			m.ownFlushDone = true
			// Our old view's unstable messages must reach our own
			// survivors before they move to the union view. The union
			// coordinator's VIEW is a different sender, so it can
			// overtake our forwards; hold merge_ready until every
			// survivor confirms it has the pool (the mark travels the
			// same FIFO channel as the forwards).
			m.rebroadcastPool(surv)
			m.beginPoolSync(surv)
		} else if m.poolWait != nil {
			// A flush restart shrank the survivor set; stop waiting
			// for acks from the departed.
			for e := range m.poolWait {
				if !containsID(surv, e) {
					delete(m.poolWait, e)
				}
			}
			m.maybeFinishPoolSync()
		}
		return
	}
	m.rebroadcastPool(surv)
	members := surv
	if m.state == stMergingIn {
		members = unionIDs(surv, m.mergePeer)
	}
	m.installNewView(members)
}

// rebroadcastPool sends every pooled unstable message to the given
// members (receivers deduplicate).
func (m *Mbrship) rebroadcastPool(members []core.EndpointID) {
	dests := m.othersOf(members)
	if len(dests) == 0 {
		return
	}
	ids := make([]core.MsgID, 0, len(m.fwdPool))
	for id := range m.fwdPool {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Origin != ids[j].Origin {
			return ids[i].Origin.Older(ids[j].Origin)
		}
		return ids[i].Seq < ids[j].Seq
	})
	for _, id := range ids {
		e := m.fwdPool[id]
		fwd := message.New(e.wire)
		fwd.PushUint64(e.seq)
		m.pushViewTag(fwd)
		fwd.PushUint64(m.flushRound)
		wire.PushEndpointID(fwd, e.origin)
		fwd.PushUint8(kFwd)
		m.stats.FwdsSent++
		m.Ctx.Down(&core.Event{Type: core.DSend, Msg: fwd, Dests: dests})
	}
}

// installNewView multicasts and installs the successor view. The new
// view's sequence number exceeds both our epoch and (for merges) the
// peer view's epoch, so every member accepts it as younger.
func (m *Mbrship) installNewView(members []core.EndpointID) {
	seq := m.epoch
	if m.mergePeerView.Seq > seq {
		seq = m.mergePeerView.Seq
	}
	v := core.NewView(core.ViewID{Seq: seq + 1, Coord: m.Ctx.Self()},
		m.Ctx.GroupAddr(), members)
	// The announcement names the predecessor view(s) this successor
	// was flushed from — our own sealed view and, for a merge union,
	// the requester side's sealed view plus the coordinator that
	// sealed it. A receiver installs the view only from a predecessor
	// it is actually in, and delivers the sealing coordinator's
	// stashed forwards first (receiveView) — concurrent coordinators
	// of one view produce same-seq sibling successors, and a member
	// that consented to both must not hop from one sibling into the
	// other without a flush in between.
	msg := message.New(nil)
	wire.PushEndpointID(msg, m.mergePeerSealer)
	wire.PushEndpointID(msg, m.mergePeerView.Coord)
	msg.PushUint64(m.mergePeerView.Seq)
	wire.PushEndpointID(msg, m.view.ID.Coord)
	msg.PushUint64(m.view.ID.Seq)
	wire.PushView(msg, v)
	msg.PushUint8(kView)
	dests := m.othersOf(members)
	if len(dests) > 0 {
		m.Ctx.Down(&core.Event{Type: core.DSend, Msg: msg, Dests: dests})
	}
	m.install(v)
}

// receiveView installs a view announced by a flush or merge
// coordinator — but only if this member is in one of the predecessor
// views the announcement was flushed from. Being in a predecessor
// means the coordinator sealed *our* view with our consent (the kView
// follows its kFlush on the same FIFO channel), so our delivery state
// matches its rebroadcast pool. Any other transition would carry
// deliveries the new view's members never agreed on.
func (m *Mbrship) receiveView(ev *core.Event) {
	v := wire.PopView(ev.Msg)
	pred1 := core.ViewID{Seq: ev.Msg.PopUint64(), Coord: wire.PopEndpointID(ev.Msg)}
	pred2 := core.ViewID{Seq: ev.Msg.PopUint64(), Coord: wire.PopEndpointID(ev.Msg)}
	sealer2 := wire.PopEndpointID(ev.Msg)
	if m.view != nil && m.view.ID == v.ID {
		return // duplicate announcement of the view we are in
	}
	if !v.Contains(m.Ctx.Self()) {
		// Excluded from the successor view; we keep our current view
		// and will eventually form a singleton and merge back.
		return
	}
	if m.view != nil && m.view.ID != pred1 && m.view.ID != pred2 {
		// Flushed from a view we are not in: a concurrent coordinator
		// sealed a sibling of our view (or the announcement is a stale
		// replay). Refuse, and say so — the announcer believes we are
		// a member of v and would wait on us forever; the nack lets it
		// flush us out instead (receiveViewNack). The views reunite
		// later by merge.
		m.stats.ViewsRefused++
		m.Ctx.Tracef("mbrship %s: refuse %v from %s (preds %v,%v; here %v)",
			m.Ctx.Self(), v.ID, ev.Source, pred1, pred2, m.view.ID)
		nack := message.New(nil)
		wire.PushEndpointID(nack, v.ID.Coord)
		nack.PushUint64(v.ID.Seq)
		nack.PushUint8(kViewNack)
		m.Ctx.Down(&core.Event{Type: core.DSend, Msg: nack,
			Dests: []core.EndpointID{ev.Source}})
		return
	}
	// We are moving to v: first deliver the pool of the flush that
	// sealed our view into it — the rebroadcast forwards stashed under
	// the sealing coordinator (the announcer itself on its own side of
	// a merge, the requester coordinator on the other). They traveled
	// the same FIFO channel as the flush that preceded this kView, so
	// the stash is complete; delivering them *here* is what makes
	// every member taking the v-edge agree on its deliveries.
	if m.view != nil {
		sealer := v.ID.Coord
		if m.view.ID == pred2 && m.view.ID != pred1 {
			sealer = sealer2
		}
		for _, e := range m.fwdStash[sealer] {
			m.deliverFwd(e.origin, e.seq, e.wire, sealer)
		}
	}
	m.install(v)
}

// receiveViewNack handles a member's refusal of a view we announced.
// The refuser moved somewhere we cannot follow — typically into a
// concurrent same-seq sibling sealed by another coordinator — so it
// will never act as a member of our view. Treat it like a failure:
// flush it out so the rest of the view makes progress, and let the
// usual merge path reunite the two sides.
func (m *Mbrship) receiveViewNack(ev *core.Event) {
	refused := core.ViewID{Seq: ev.Msg.PopUint64(), Coord: wire.PopEndpointID(ev.Msg)}
	if m.view == nil || m.view.ID != refused || !m.view.Contains(ev.Source) {
		return
	}
	m.Ctx.Tracef("mbrship %s: %s refused %v; expelling it",
		m.Ctx.Self(), ev.Source, refused)
	m.suspect(ev.Source)
	m.maybeStartFlush(false)
}

// install makes v the current view: upcall VIEW, downcall view, and
// reset all per-epoch state.
func (m *Mbrship) install(v *core.View) {
	m.view = v
	m.epoch = v.ID.Seq
	m.state = stNormal
	m.castSeq = 0
	m.delivered = make(map[core.EndpointID]uint64)
	m.sparse = make(map[core.MsgID]bool)
	m.log = make(map[core.EndpointID][]logEntry)
	m.ackKnown = make(map[core.EndpointID]map[core.EndpointID]uint64)
	m.suspects = make(map[core.EndpointID]bool)
	m.okFrom = nil
	m.fwdPool = nil
	m.flushForMerge = false
	m.flushCoord = core.EndpointID{}
	m.mergeTarget = core.EndpointID{}
	m.mergePeer = nil
	m.mergePeerView = core.ViewID{}
	m.mergePeerSealer = core.EndpointID{}
	m.fwdStash = nil
	m.stashSize = 0
	m.mergeReady = false
	m.ownFlushDone = false
	m.poolWait = nil
	m.consentOwed = false
	m.cancelTimer(&m.flushCancel)
	m.cancelTimer(&m.mergeCancel)
	m.stats.ViewsInstalled++
	m.Ctx.Tracef("mbrship %s: install %v", m.Ctx.Self(), v)

	// Tell the layers below about the new destination set, tell the
	// application a flush (if any) completed, and install the view.
	m.Ctx.Down(&core.Event{Type: core.DView, View: v})
	if m.stats.ViewsInstalled > 1 {
		m.Ctx.Up(&core.Event{Type: core.UFlushOK})
	}
	m.Ctx.Up(&core.Event{Type: core.UView, View: v, Primary: m.Primary()})

	// Replay data that arrived for this view before we installed it
	// (senders can outrun the coordinator's view announcement).
	future := m.future
	m.future = nil
	for _, fev := range future {
		m.receiveData(fev)
	}

	// Release casts deferred during the view change — unless this is a
	// minority view under the primary-partition restriction, in which
	// case they stay deferred until the member rejoins a primary view.
	if !m.Primary() {
		return
	}
	m.releasePendingCasts()
}

// releasePendingCasts re-sends the casts parked while transmissions
// were blocked. It must run on EVERY transition back to stNormal —
// view installs, but also abandoned merges — or casts issued after the
// transition overtake the parked ones and per-sender FIFO breaks.
func (m *Mbrship) releasePendingCasts() {
	pending := m.pendingCasts
	m.pendingCasts = nil
	for _, msg := range pending {
		m.castDown(msg)
	}
}

// abandonMerge gives up an outgoing merge (target unresponsive,
// denied, or absorbed into a symmetric attempt). If the merge flush
// never started, the view is untouched: back to stNormal, and the
// casts parked while merging resume in the current epoch. But once the
// grant arrived and the flush round is running, the old epoch is being
// sealed — members have forwarded their unstable logs — so new casts
// must NOT re-open it. The flush is demoted to a plain one instead: it
// completes, installs the successor view, and install() releases the
// pending casts into the new epoch.
func (m *Mbrship) abandonMerge() {
	m.mergeTarget = core.EndpointID{}
	m.mergeReady = false
	m.ownFlushDone = false
	m.poolWait = nil
	m.mergeTries = 0
	m.cancelTimer(&m.mergeCancel)
	if m.flushCoord == m.Ctx.Self() && m.okFrom != nil {
		m.state = stFlushing
		m.checkFlushComplete() // may already be complete: install now
		return
	}
	m.state = stNormal
	m.releasePendingCasts()
}

// armFlushTimer (re)arms the watchdog that suspects a dead flush
// coordinator.
func (m *Mbrship) armFlushTimer() {
	m.cancelTimer(&m.flushCancel)
	if m.flushTimeout <= 0 {
		return
	}
	m.flushCancel = m.Ctx.SetTimer(m.flushTimeout, func() {
		m.flushCancel = nil
		if m.state == stNormal || m.destroyed {
			return
		}
		if m.state == stMergingIn && m.ownFlushDone && !m.mergeReady {
			// The requester vanished between grant and merge_ready.
			// Our own flush is complete (everyone consented), so
			// finish it *as a flush*: installing the survivors view
			// releases the members who consented and are waiting —
			// leaving them hanging would make them suspect us.
			m.state = stFlushing
			m.mergePeer = nil
			m.mergePeerView = core.ViewID{}
			m.mergePeerSealer = core.EndpointID{}
			m.ownFlushDone = false
			m.rebroadcastPool(m.survivors())
			m.installNewView(m.survivors())
			return
		}
		if m.flushCoord != m.Ctx.Self() && !m.flushCoord.IsZero() {
			m.suspect(m.flushCoord)
		}
		// Whoever is now the oldest survivor restarts the flush.
		m.maybeStartFlush(false)
		m.armFlushTimer()
	})
}

// ---------------------------------------------------------------------------
// Stability gossip

// gossipTick multicasts this member's delivery vector; peers merge it
// and trim their unstable logs (all members must log all unstable
// messages — and only unstable ones, §5).
func (m *Mbrship) gossipTick() {
	if m.destroyed {
		return
	}
	m.gossipCancel = m.Ctx.SetTimer(m.gossipPeriod, m.gossipTick)
	if m.view == nil || m.view.Size() < 2 || m.state != stNormal {
		return
	}
	origins := append([]core.EndpointID(nil), m.view.Members...)
	counts := make([]uint64, len(origins))
	for i, o := range origins {
		counts[i] = m.delivered[o]
	}
	msg := message.New(nil)
	wire.PushCounts(msg, counts)
	wire.PushIDList(msg, origins)
	m.pushViewTag(msg)
	msg.PushUint8(kGossip)
	m.Ctx.Down(&core.Event{Type: core.DSend, Msg: msg, Dests: m.othersOf(m.view.Members)})
	// Our own vector participates in the stability computation.
	m.mergeAcks(m.Ctx.Self(), origins, counts)
	m.trimLog()
}

// receiveGossip merges a peer's delivery vector.
func (m *Mbrship) receiveGossip(ev *core.Event) {
	epoch, coord := popViewTag(ev.Msg)
	origins := wire.PopIDList(ev.Msg)
	counts := wire.PopCounts(ev.Msg)
	if !m.inCurrentView(epoch, coord) || len(origins) != len(counts) {
		return
	}
	m.mergeAcks(ev.Source, origins, counts)
	m.trimLog()
}

func (m *Mbrship) mergeAcks(member core.EndpointID, origins []core.EndpointID, counts []uint64) {
	known := m.ackKnown[member]
	if known == nil {
		known = make(map[core.EndpointID]uint64)
		m.ackKnown[member] = known
	}
	for i, o := range origins {
		if counts[i] > known[o] {
			known[o] = counts[i]
		}
	}
}

// trimLog drops log entries that every current member has delivered.
func (m *Mbrship) trimLog() {
	if m.view == nil {
		return
	}
	for origin, entries := range m.log {
		min := ^uint64(0)
		for _, member := range m.view.Members {
			known := m.ackKnown[member]
			if known == nil {
				min = 0
				break
			}
			if c := known[origin]; c < min {
				min = c
			}
		}
		if min == 0 {
			continue
		}
		keep := entries[:0]
		for _, e := range entries {
			if e.seq > min {
				keep = append(keep, e)
			}
		}
		m.log[origin] = keep
	}
}

// ---------------------------------------------------------------------------
// Merging

// startMerge contacts the coordinator of another view.
func (m *Mbrship) startMerge(contact core.EndpointID) {
	if m.view == nil || contact == m.Ctx.Self() || m.view.Contains(contact) {
		return
	}
	if m.coordinator() != m.Ctx.Self() || m.state != stNormal {
		// Only an idle coordinator merges; the MERGE layer retries.
		m.Ctx.Tracef("mbrship %s: merge->%s dropped (state=%d coord=%v)",
			m.Ctx.Self(), contact, m.state, m.coordinator())
		m.Ctx.Up(&core.Event{Type: core.UMergeDenied, Contact: contact,
			Reason: "local member busy or not coordinator"})
		return
	}
	m.Ctx.Tracef("mbrship %s: merge req -> %s from %v", m.Ctx.Self(), contact, m.view.ID)
	m.state = stMergingOut
	m.mergeTarget = contact
	m.mergeTries = 0
	m.sendMergeReq()
	m.armMergeTimer()
}

func (m *Mbrship) sendMergeReq() {
	msg := message.New(nil)
	wire.PushView(msg, m.view)
	msg.PushUint8(kMergeReq)
	m.Ctx.Down(&core.Event{Type: core.DSend, Msg: msg, Dests: []core.EndpointID{m.mergeTarget}})
}

// armMergeTimer retries or abandons an unanswered merge request.
func (m *Mbrship) armMergeTimer() {
	m.cancelTimer(&m.mergeCancel)
	if m.mergeRetry <= 0 {
		return
	}
	m.mergeCancel = m.Ctx.SetTimer(m.mergeRetry, func() {
		m.mergeCancel = nil
		if m.state != stMergingOut || m.destroyed {
			return
		}
		m.mergeTries++
		if m.mergeTries > maxMergeTries {
			// The target stopped responding (crashed, or abandoned
			// the merge). Give up; the MERGE layer or application
			// will try again from scratch.
			target := m.mergeTarget
			m.abandonMerge()
			m.Ctx.Up(&core.Event{Type: core.UMergeDenied, Contact: target,
				Reason: "merge target unresponsive"})
			return
		}
		if m.ownFlushDone {
			if len(m.poolWait) > 0 {
				// Still waiting for survivors to confirm the pool
				// rebroadcast; re-mark the laggards rather than
				// bypassing the gate with an early merge_ready.
				m.sendPoolMark()
			} else {
				// Grant received and our flush finished: the target
				// may have missed merge_ready; resend it.
				m.sendMergeReady()
			}
		} else if m.mergeReady {
			// Grant received; flush still in progress — keep waiting.
		} else {
			m.sendMergeReq()
		}
		m.armMergeTimer()
	})
}

// receiveMergeReq handles a merge request from another view's
// coordinator.
func (m *Mbrship) receiveMergeReq(ev *core.Event) {
	reqView := wire.PopView(ev.Msg)
	requester := ev.Source
	deny := func(reason string) {
		m.Ctx.Tracef("mbrship %s: deny merge from %s: %s", m.Ctx.Self(), requester, reason)
		m.stats.MergesDenied++
		msg := message.New(nil)
		msg.PushString(reason)
		msg.PushUint8(kMergeDeny)
		m.Ctx.Down(&core.Event{Type: core.DSend, Msg: msg, Dests: []core.EndpointID{requester}})
	}
	if m.view == nil || m.view.Contains(requester) {
		return
	}
	if m.coordinator() != m.Ctx.Self() {
		deny("not coordinator")
		return
	}
	switch m.state {
	case stNormal:
		// Free to merge.
	case stMergingOut:
		// Symmetric merge attempt: we asked them while they asked us.
		// The older endpoint coordinates, so if the requester is
		// exactly our target and younger than us, abandon our own
		// attempt and absorb them instead. Requests from anyone else
		// while we are merging outward are denied — absorbing a third
		// party here would strand the coordinator we already asked.
		if requester == m.mergeTarget && m.Ctx.Self().Older(requester) {
			m.abandonMerge()
			if m.state != stNormal {
				// Our merge flush had already started; it must run to
				// a view install before we can absorb anyone.
				deny("busy finishing flush")
				return
			}
		} else {
			deny("busy merging elsewhere")
			return
		}
	default:
		deny("busy")
		return
	}
	if m.manualGrant {
		m.pendingReqs = append(m.pendingReqs, reqView)
		m.Ctx.Up(&core.Event{Type: core.UMergeRequest, Contact: requester, View: reqView})
		return
	}
	m.acceptMerge(reqView)
}

// grantPending resolves a manual-grant decision from the application.
func (m *Mbrship) grantPending(contact core.EndpointID, grant bool, reason string) {
	for i, rv := range m.pendingReqs {
		if rv.ID.Coord == contact || rv.Contains(contact) {
			m.pendingReqs = append(m.pendingReqs[:i], m.pendingReqs[i+1:]...)
			if grant {
				m.acceptMerge(rv)
			} else {
				m.stats.MergesDenied++
				msg := message.New(nil)
				msg.PushString(reason)
				msg.PushUint8(kMergeDeny)
				m.Ctx.Down(&core.Event{Type: core.DSend, Msg: msg,
					Dests: []core.EndpointID{rv.ID.Coord}})
			}
			return
		}
	}
}

// acceptMerge grants a merge and flushes our side.
func (m *Mbrship) acceptMerge(reqView *core.View) {
	if m.state != stNormal {
		return
	}
	m.stats.MergesGranted++
	m.state = stMergingIn
	m.mergePeer = append([]core.EndpointID(nil), reqView.Members...)
	m.mergeReady = false
	m.ownFlushDone = false
	grant := message.New(nil)
	grant.PushUint8(kMergeGrant)
	m.Ctx.Down(&core.Event{Type: core.DSend, Msg: grant,
		Dests: []core.EndpointID{reqView.ID.Coord}})
	m.startFlushRound(true)
}

// receiveMergeGrant starts the requester side's flush.
func (m *Mbrship) receiveMergeGrant(ev *core.Event) {
	if m.state != stMergingOut || ev.Source != m.mergeTarget {
		return
	}
	m.mergeReady = true // grant received; flush next
	m.startFlushRound(true)
}

// receiveMergeDeny abandons the merge attempt and tells the
// application.
func (m *Mbrship) receiveMergeDeny(ev *core.Event) {
	reason := ev.Msg.PopString()
	if m.state != stMergingOut || ev.Source != m.mergeTarget {
		return
	}
	m.abandonMerge()
	m.Ctx.Up(&core.Event{Type: core.UMergeDenied, Contact: ev.Source, Reason: reason})
}

// sendMergeReady tells the target coordinator that our side is
// flushed, listing our survivors and our full view identity. The
// union view's sequence must outnumber both sides' epochs, and the
// union kView names our view as a predecessor so our survivors are
// entitled to install it (receiveView).
func (m *Mbrship) sendMergeReady() {
	msg := message.New(nil)
	wire.PushEndpointID(msg, m.view.ID.Coord)
	msg.PushUint64(m.view.ID.Seq)
	wire.PushIDList(msg, m.survivors())
	msg.PushUint8(kMergeReady)
	m.Ctx.Down(&core.Event{Type: core.DSend, Msg: msg, Dests: []core.EndpointID{m.mergeTarget}})
}

// receiveMergeReady completes the merge at the granting coordinator.
func (m *Mbrship) receiveMergeReady(ev *core.Event) {
	peers := wire.PopIDList(ev.Msg)
	peerView := core.ViewID{Seq: ev.Msg.PopUint64(), Coord: wire.PopEndpointID(ev.Msg)}
	if m.state != stMergingIn {
		return
	}
	m.mergePeer = peers
	m.mergePeerView = peerView
	m.mergePeerSealer = ev.Source
	m.mergeReady = true
	m.checkFlushComplete()
}

// beginPoolSync gates merge_ready behind a pool-acknowledgement round.
// The rebroadcast forwards and the union coordinator's VIEW come from
// different senders, so FIFO does not order them against each other; a
// survivor that installs the union view first would stale-drop the
// late forwards and virtual synchrony would break. The MARK travels
// the same FIFO channel as the forwards, so its ACK proves the whole
// pool arrived. With nothing pooled (or nobody else surviving) there
// is nothing to race and merge_ready goes out at once.
func (m *Mbrship) beginPoolSync(surv []core.EndpointID) {
	others := m.othersOf(surv)
	if len(m.fwdPool) == 0 || len(others) == 0 {
		m.sendMergeReady()
		return
	}
	m.poolWait = make(map[core.EndpointID]bool, len(others))
	for _, e := range others {
		m.poolWait[e] = true
	}
	m.sendPoolMark()
}

// sendPoolMark (re)sends the end-of-rebroadcast marker to every
// survivor whose ack is still outstanding.
func (m *Mbrship) sendPoolMark() {
	dests := make([]core.EndpointID, 0, len(m.poolWait))
	for e := range m.poolWait {
		dests = append(dests, e)
	}
	if len(dests) == 0 {
		return
	}
	sortIDs(dests)
	msg := message.New(nil)
	msg.PushUint64(m.flushRound)
	msg.PushUint8(kPoolMark)
	m.Ctx.Down(&core.Event{Type: core.DSend, Msg: msg, Dests: dests})
}

// receivePoolMark acknowledges a pool marker. The reply is
// unconditional: FIFO delivery below us guarantees every forward the
// coordinator sent before the mark has already been processed here,
// whatever state or epoch we have moved to since.
func (m *Mbrship) receivePoolMark(ev *core.Event) {
	round := ev.Msg.PopUint64()
	ack := message.New(nil)
	ack.PushUint64(round)
	ack.PushUint8(kPoolAck)
	m.Ctx.Down(&core.Event{Type: core.DSend, Msg: ack, Dests: []core.EndpointID{ev.Source}})
}

// receivePoolAck retires one survivor's outstanding pool ack. Round
// numbers are not matched: the forwards were all sent before the
// oldest mark, so any ack from the peer proves receipt.
func (m *Mbrship) receivePoolAck(ev *core.Event) {
	ev.Msg.PopUint64()
	if m.state != stMergingOut || m.poolWait == nil {
		return
	}
	delete(m.poolWait, ev.Source)
	m.maybeFinishPoolSync()
}

// maybeFinishPoolSync sends merge_ready once the last pool ack is in.
func (m *Mbrship) maybeFinishPoolSync() {
	if m.poolWait == nil || len(m.poolWait) != 0 {
		return
	}
	if m.state != stMergingOut || !m.ownFlushDone {
		return
	}
	m.poolWait = nil
	m.sendMergeReady()
}

// ---------------------------------------------------------------------------
// Leave, destroy, helpers

// announceLeave tells the group we are going ("a failed process is
// automatically dropped; leaving is the polite version").
func (m *Mbrship) announceLeave() {
	if m.view == nil || m.view.Size() < 2 {
		return
	}
	msg := message.New(nil)
	m.pushViewTag(msg)
	msg.PushUint8(kLeave)
	m.Ctx.Down(&core.Event{Type: core.DSend, Msg: msg, Dests: m.othersOf(m.view.Members)})
}

func (m *Mbrship) shutdown() {
	m.destroyed = true
	m.cancelTimer(&m.gossipCancel)
	m.cancelTimer(&m.flushCancel)
	m.cancelTimer(&m.mergeCancel)
}

func (m *Mbrship) cancelTimer(t *func()) {
	if *t != nil {
		(*t)()
		*t = nil
	}
}

// othersOf filters self out of a member list.
func (m *Mbrship) othersOf(members []core.EndpointID) []core.EndpointID {
	out := make([]core.EndpointID, 0, len(members))
	for _, e := range members {
		if e != m.Ctx.Self() {
			out = append(out, e)
		}
	}
	return out
}

func (m *Mbrship) dumpLine() string {
	view := "none"
	if m.view != nil {
		view = m.view.String()
	}
	return fmt.Sprintf("view=%s state=%d suspects=%d logged=%d views=%d flushes=%d",
		view, m.state, len(m.suspects), m.logSize(), m.stats.ViewsInstalled, m.stats.FlushRounds)
}

func (m *Mbrship) logSize() int {
	n := 0
	for _, entries := range m.log {
		n += len(entries)
	}
	return n
}

func sortIDs(ids []core.EndpointID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].Older(ids[j]) })
}

// pushViewTag stamps a message with the full identity of the sender's
// current view: the epoch AND the coordinator that installed it.
// Concurrent partitioned views can share a sequence number, so the
// bare epoch does not identify a view — a cast tagged with the number
// alone leaks into same-seq views on the other side of a partition and
// breaks virtually synchronous delivery.
func (m *Mbrship) pushViewTag(msg *message.Message) {
	wire.PushEndpointID(msg, m.view.ID.Coord)
	msg.PushUint64(m.epoch)
}

// popViewTag reads a view tag pushed by pushViewTag.
func popViewTag(msg *message.Message) (epoch uint64, coord core.EndpointID) {
	epoch = msg.PopUint64()
	coord = wire.PopEndpointID(msg)
	return epoch, coord
}

// inCurrentView reports whether a view tag names exactly the view this
// member is in now.
func (m *Mbrship) inCurrentView(epoch uint64, coord core.EndpointID) bool {
	return m.view != nil && epoch == m.epoch && coord == m.view.ID.Coord
}

func containsID(ids []core.EndpointID, e core.EndpointID) bool {
	for _, x := range ids {
		if x == e {
			return true
		}
	}
	return false
}

func unionIDs(a, b []core.EndpointID) []core.EndpointID {
	seen := make(map[core.EndpointID]bool, len(a)+len(b))
	out := make([]core.EndpointID, 0, len(a)+len(b))
	for _, e := range a {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	for _, e := range b {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	sortIDs(out)
	return out
}
