package mbrship_test

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/mbrship"
	"horus/internal/layertest"
	"horus/internal/message"
)

// Unit tests through the single-layer harness; multi-member protocol
// behaviour (flush, merge, virtual synchrony) is covered by
// internal/integration.

func newHarness(t *testing.T, opts ...mbrship.Option) *layertest.Harness {
	t.Helper()
	base := []mbrship.Option{
		mbrship.WithGossipPeriod(20 * time.Millisecond),
		mbrship.WithFlushTimeout(200 * time.Millisecond),
	}
	h := layertest.New(t, mbrship.NewWith(append(base, opts...)...))
	h.Run(time.Millisecond) // fire the initial singleton-view timer
	return h
}

func TestInstallsSingletonViewOnInit(t *testing.T) {
	h := newHarness(t)
	views := h.UpOfType(core.UView)
	if len(views) != 1 {
		t.Fatalf("views = %d, want the initial singleton", len(views))
	}
	v := views[0].View
	if v.Size() != 1 || v.Members[0] != h.Self() || v.ID.Seq != 1 {
		t.Fatalf("initial view = %v", v)
	}
	// The view also propagated downward as a view downcall.
	if got := h.DownOfType(core.DView); len(got) != 1 {
		t.Fatalf("view downcalls = %d", len(got))
	}
	if !views[0].Primary {
		t.Error("default mode must mark every view primary")
	}
}

func TestSelfDeliversOwnCast(t *testing.T) {
	h := newHarness(t)
	h.InjectDown(core.NewCast(message.New([]byte("me too"))))
	got := h.UpOfType(core.UCast)
	if len(got) != 1 || string(got[0].Msg.Body()) != "me too" || got[0].Source != h.Self() {
		t.Fatalf("self delivery = %v", got)
	}
	// And the network copy went out.
	if sent := h.DownOfType(core.DCast); len(sent) != 1 {
		t.Fatalf("casts sent = %d", len(sent))
	}
}

func TestStaleEpochDataDropped(t *testing.T) {
	h := newHarness(t)
	peer := layertest.ID("p", 2)
	// Data stamped with epoch 0 (before our view 1) from an unknown
	// member must not surface.
	m := message.New([]byte("ghost"))
	m.PushUint64(7) // seq
	pushID(m, peer) // view coordinator
	m.PushUint64(0) // epoch
	m.PushUint8(1)  // kData
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	for _, ev := range h.UpOfType(core.UCast) {
		if string(ev.Msg.Body()) == "ghost" {
			t.Fatal("stale-epoch data delivered")
		}
	}
	l := h.G.Focus("MBRSHIP").(*mbrship.Mbrship)
	if l.Stats().StaleDropped == 0 {
		t.Error("StaleDropped not counted")
	}
}

func TestFutureEpochDataBufferedUntilView(t *testing.T) {
	h := newHarness(t)
	peer := layertest.ID("p", 2)
	// Data from epoch 2 arrives before we install view 2.
	m := message.New([]byte("early"))
	m.PushUint64(1) // seq
	pushID(m, peer) // view coordinator: peer announces view 2 below
	m.PushUint64(2) // epoch
	m.PushUint8(1)  // kData
	h.InjectUp(&core.Event{Type: core.UCast, Msg: m, Source: peer})
	for _, ev := range h.UpOfType(core.UCast) {
		if string(ev.Msg.Body()) == "early" {
			t.Fatal("future-epoch data delivered before its view")
		}
	}
	// The view arrives (as the coordinator would announce it).
	v := core.NewView(core.ViewID{Seq: 2, Coord: peer}, "test",
		[]core.EndpointID{peer, h.Self()})
	vm := message.New(nil)
	pushPreds(vm, core.ViewID{Seq: 1, Coord: h.Self()}) // flushed from our singleton
	pushView(vm, v)
	vm.PushUint8(7) // kView
	h.InjectUp(&core.Event{Type: core.USend, Msg: vm, Source: peer})

	delivered := false
	for _, ev := range h.UpOfType(core.UCast) {
		if string(ev.Msg.Body()) == "early" {
			delivered = true
		}
	}
	if !delivered {
		t.Fatal("buffered future-epoch data not replayed at view install")
	}
}

func TestOlderViewAnnouncementIgnored(t *testing.T) {
	h := newHarness(t)
	peer := layertest.ID("p", 2)
	// First a view 3 installs...
	v3 := core.NewView(core.ViewID{Seq: 3, Coord: peer}, "test",
		[]core.EndpointID{peer, h.Self()})
	m3 := message.New(nil)
	pushPreds(m3, core.ViewID{Seq: 1, Coord: h.Self()})
	pushView(m3, v3)
	m3.PushUint8(7)
	h.InjectUp(&core.Event{Type: core.USend, Msg: m3, Source: peer})
	// ...then a stale view 2 arrives late.
	v2 := core.NewView(core.ViewID{Seq: 2, Coord: peer}, "test",
		[]core.EndpointID{peer})
	m2 := message.New(nil)
	pushPreds(m2, core.ViewID{Seq: 1, Coord: peer})
	pushView(m2, v2)
	m2.PushUint8(7)
	h.InjectUp(&core.Event{Type: core.USend, Msg: m2, Source: peer})

	l := h.G.Focus("MBRSHIP").(*mbrship.Mbrship)
	if got := l.View().ID.Seq; got != 3 {
		t.Fatalf("current view seq = %d, want 3 (older announcement accepted)", got)
	}
}

func TestViewExcludingSelfIgnored(t *testing.T) {
	h := newHarness(t)
	peer := layertest.ID("p", 2)
	v := core.NewView(core.ViewID{Seq: 5, Coord: peer}, "test",
		[]core.EndpointID{peer})
	m := message.New(nil)
	pushPreds(m, core.ViewID{Seq: 4, Coord: peer})
	pushView(m, v)
	m.PushUint8(7)
	h.InjectUp(&core.Event{Type: core.USend, Msg: m, Source: peer})
	l := h.G.Focus("MBRSHIP").(*mbrship.Mbrship)
	if l.View().ID.Seq != 1 {
		t.Fatal("adopted a view that excludes us")
	}
}

func TestPrimaryPartitionFlag(t *testing.T) {
	h := newHarness(t, mbrship.WithPrimaryPartition(5))
	// Singleton of a 5-member group: not primary; casts defer.
	views := h.UpOfType(core.UView)
	if len(views) != 1 || views[0].Primary {
		t.Fatalf("singleton view of 5 marked primary: %v", views)
	}
	h.InjectDown(core.NewCast(message.New([]byte("blocked"))))
	if got := h.DownOfType(core.DCast); len(got) != 0 {
		t.Fatal("minority member cast escaped")
	}
	l := h.G.Focus("MBRSHIP").(*mbrship.Mbrship)
	if l.Primary() {
		t.Fatal("Primary() true for 1 of 5")
	}
}

func TestGossipSkipsSingleton(t *testing.T) {
	h := newHarness(t)
	h.Run(200 * time.Millisecond)
	for _, ev := range h.DownOfType(core.DSend) {
		t.Fatalf("singleton member sent control traffic: %v", ev)
	}
}

// pushID mirrors wire.PushEndpointID for test message construction.
func pushID(m *message.Message, id core.EndpointID) {
	m.PushString(id.Site)
	m.PushUint64(id.Birth)
}

// pushPreds mirrors installNewView's predecessor header: the sealed
// view the announcement was flushed from (pred1) and a zero merge-peer
// predecessor (pred2). Push before pushView.
func pushPreds(m *message.Message, pred1 core.ViewID) {
	pushID(m, core.EndpointID{}) // sealer2: no merge peer
	pushID(m, core.EndpointID{}) // pred2: no merge peer
	m.PushUint64(0)
	pushID(m, pred1.Coord)
	m.PushUint64(pred1.Seq)
}

// pushView mirrors wire.PushView for test message construction.
func pushView(m *message.Message, v *core.View) {
	for i := len(v.Members) - 1; i >= 0; i-- {
		m.PushString(v.Members[i].Site)
		m.PushUint64(v.Members[i].Birth)
	}
	m.PushUint32(uint32(len(v.Members)))
	m.PushString(string(v.Group))
	m.PushString(v.ID.Coord.Site)
	m.PushUint64(v.ID.Coord.Birth)
	m.PushUint64(v.ID.Seq)
}
