// Package com implements the COM layer: the bottom of every stack,
// translating the low-level network interface into the Horus Common
// Protocol Interface (paper §7).
//
// COM keeps track of the source of messages "by pushing the address of
// the source endpoint on each outgoing message", can filter out
// spurious messages from endpoints not in its view, and — because a
// view at this level is nothing but the set of destination endpoints —
// uses the most recent view downcall as the multicast destination set.
//
// Properties: requires P1 (best-effort network); provides P10 (byte
// re-ordering detection is delegated to the wire format's length
// framing) and P11 (source address).
package com

import (
	"fmt"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/wire"
)

// Message kinds on the wire.
const (
	kindCast   = 1
	kindSend   = 2
	kindLocate = 3
)

// Com is the bottom protocol layer.
type Com struct {
	core.Base
	members []core.EndpointID // destination set from the last view downcall
	filter  bool              // drop packets from endpoints outside the view
	stats   Stats
}

// Stats counts COM activity, exposed through Focus for tests and the
// accounting tools.
type Stats struct {
	Sent     int // messages transmitted (casts and sends)
	Received int // messages delivered upward
	Filtered int // messages dropped by view filtering
}

// New returns a COM layer factory with filtering disabled.
func New() core.Layer { return &Com{} }

// NewFiltering returns a factory for COM layers that drop packets from
// sources outside the current view ("filters out spurious messages
// from endpoints not in its view", §7). Membership traffic from
// not-yet-members must bypass such stacks, so filtering defaults off.
func NewFiltering() core.Layer { return &Com{filter: true} }

// Name implements core.Layer.
func (c *Com) Name() string { return "COM" }

// Stats returns a snapshot of the layer's counters.
func (c *Com) Stats() Stats { return c.stats }

// Down implements core.Layer.
func (c *Com) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast:
		ev.Msg.PushUint8(kindCast)
		wire.PushEndpointID(ev.Msg, c.Ctx.Self())
		c.stats.Sent++
		c.Ctx.Transmit(c.members, ev.Msg)
	case core.DSend:
		ev.Msg.PushUint8(kindSend)
		wire.PushEndpointID(ev.Msg, c.Ctx.Self())
		c.stats.Sent++
		c.Ctx.Transmit(ev.Dests, ev.Msg)
	case core.DLocate:
		ev.Msg.PushUint8(kindLocate)
		wire.PushEndpointID(ev.Msg, c.Ctx.Self())
		c.stats.Sent++
		// Empty destination set broadcasts on the shared medium,
		// reaching endpoints beyond the current view.
		c.Ctx.Transmit(nil, ev.Msg)
	case core.DView:
		if ev.View != nil {
			c.members = append([]core.EndpointID(nil), ev.View.Members...)
		}
		c.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, "COM: "+c.dumpLine())
		c.Ctx.Down(ev)
	default:
		c.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (c *Com) Up(ev *core.Event) {
	if ev.Type != core.UPacket {
		c.Ctx.Up(ev)
		return
	}
	src := wire.PopEndpointID(ev.Msg)
	kind := ev.Msg.PopUint8()
	ev.Source = src
	switch kind {
	case kindCast:
		ev.Type = core.UCast
	case kindSend:
		ev.Type = core.USend
	case kindLocate:
		ev.Type = core.ULocate
		c.stats.Received++
		c.Ctx.Up(ev)
		return
	default:
		// Garbled kind byte; indistinguishable from line noise.
		c.stats.Filtered++
		return
	}
	if c.filter && !c.inView(src) {
		c.stats.Filtered++
		return
	}
	c.stats.Received++
	c.Ctx.Up(ev)
}

// CompileCast implements core.CastCompiler. COM's cast header is fully
// static — [source endpoint][kindCast], with the source fixed at stack
// composition — and COM is the transmitting bottom of the plan: the
// destination set is read live at transmit time, so view installs keep
// working under a compiled stack.
func (c *Com) CompileCast() (core.CompiledCast, bool) {
	probe := message.New(nil)
	probe.PushUint8(kindCast)
	wire.PushEndpointID(probe, c.Ctx.Self())
	static := append([]byte(nil), probe.Header()...)
	return core.CompiledCast{
		Static: static,
		Transmit: func(ev *core.Event, w []byte) {
			c.stats.Sent++
			c.Ctx.TransmitWire(c.members, w)
		},
	}, true
}

func (c *Com) inView(e core.EndpointID) bool {
	for _, m := range c.members {
		if m == e {
			return true
		}
	}
	return false
}

func (c *Com) dumpLine() string {
	return fmt.Sprintf("members=%d sent=%d received=%d filtered=%d",
		len(c.members), c.stats.Sent, c.stats.Received, c.stats.Filtered)
}

// NewMessage is a convenience for tests: a message with the given
// payload string.
func NewMessage(payload string) *message.Message {
	return message.New([]byte(payload))
}
