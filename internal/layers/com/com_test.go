package com_test

import (
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/com"
	"horus/internal/message"
	"horus/internal/netsim"
)

// pair builds two endpoints running COM-only stacks on one network.
func pair(t *testing.T, filtering bool) (*netsim.Network, *core.Group, *core.Group, *[]*core.Event, *[]*core.Event) {
	t.Helper()
	net := netsim.New(netsim.Config{Seed: 1})
	factory := com.New
	if filtering {
		factory = com.NewFiltering
	}
	mk := func(name string, sink *[]*core.Event) *core.Group {
		ep := net.NewEndpoint(name)
		g, err := ep.Join("g", core.StackSpec{factory}, func(ev *core.Event) {
			*sink = append(*sink, ev)
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	var evA, evB []*core.Event
	ga := mk("a", &evA)
	gb := mk("b", &evB)
	return net, ga, gb, &evA, &evB
}

func casts(evs []*core.Event) []*core.Event {
	var out []*core.Event
	for _, ev := range evs {
		if ev.Type == core.UCast {
			out = append(out, ev)
		}
	}
	return out
}

func TestCastCarriesSourceAddress(t *testing.T) {
	net, ga, gb, _, evB := pair(t, false)
	view := core.NewView(core.ViewID{Seq: 1, Coord: ga.Endpoint().ID()}, "g",
		[]core.EndpointID{ga.Endpoint().ID(), gb.Endpoint().ID()})
	ga.InstallView(view)
	gb.InstallView(view)
	ga.Cast(message.New([]byte("hi")))
	net.RunFor(time.Millisecond)

	got := casts(*evB)
	if len(got) != 1 {
		t.Fatalf("b received %d casts, want 1", len(got))
	}
	if got[0].Source != ga.Endpoint().ID() {
		t.Errorf("source = %v, want %v (P11)", got[0].Source, ga.Endpoint().ID())
	}
	if string(got[0].Msg.Body()) != "hi" {
		t.Errorf("body = %q", got[0].Msg.Body())
	}
}

func TestCastWithoutViewBroadcasts(t *testing.T) {
	net, ga, _, _, evB := pair(t, false)
	// No view installed: the cast reaches everyone on the medium.
	ga.Cast(message.New([]byte("anyone there")))
	net.RunFor(time.Millisecond)
	if len(casts(*evB)) != 1 {
		t.Fatal("view-less cast did not broadcast")
	}
}

func TestSubsetSendOnlyReachesDests(t *testing.T) {
	net, ga, gb, evA, evB := pair(t, false)
	ga.Send([]core.EndpointID{gb.Endpoint().ID()}, message.New([]byte("direct")))
	net.RunFor(time.Millisecond)
	var sends int
	for _, ev := range *evB {
		if ev.Type == core.USend {
			sends++
		}
	}
	if sends != 1 {
		t.Fatalf("b received %d sends, want 1", sends)
	}
	for _, ev := range *evA {
		if ev.Type == core.USend {
			t.Fatal("sender received its own subset send")
		}
	}
}

func TestFilteringDropsNonMembers(t *testing.T) {
	net, ga, gb, _, evB := pair(t, true)
	// b's view contains only itself: a is a stranger.
	gb.InstallView(core.NewView(core.ViewID{Seq: 1, Coord: gb.Endpoint().ID()}, "g",
		[]core.EndpointID{gb.Endpoint().ID()}))
	ga.InstallView(core.NewView(core.ViewID{Seq: 1, Coord: ga.Endpoint().ID()}, "g",
		[]core.EndpointID{ga.Endpoint().ID(), gb.Endpoint().ID()}))
	ga.Cast(message.New([]byte("spurious")))
	net.RunFor(time.Millisecond)
	if len(casts(*evB)) != 0 {
		t.Fatal("filtering COM delivered a non-member's message")
	}
	cl := gb.Focus("COM").(*com.Com)
	if cl.Stats().Filtered != 1 {
		t.Errorf("Filtered = %d, want 1", cl.Stats().Filtered)
	}
}

func TestLocateBeaconsCrossViews(t *testing.T) {
	net, ga, gb, _, evB := pair(t, true)
	// Even with filtering on, locate beacons pass: they exist to find
	// endpoints *outside* the view.
	gb.InstallView(core.NewView(core.ViewID{Seq: 1, Coord: gb.Endpoint().ID()}, "g",
		[]core.EndpointID{gb.Endpoint().ID()}))
	ga.Endpoint().Do(func() {
		ga.Stack().Down(&core.Event{Type: core.DLocate, Msg: message.New([]byte("beacon"))})
	})
	net.RunFor(time.Millisecond)
	var locates int
	for _, ev := range *evB {
		if ev.Type == core.ULocate {
			locates++
		}
	}
	if locates != 1 {
		t.Fatalf("b saw %d locate beacons, want 1", locates)
	}
}
