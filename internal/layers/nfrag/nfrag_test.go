package nfrag_test

import (
	"bytes"
	"testing"
	"time"

	"horus/internal/core"
	"horus/internal/layers/nfrag"
	"horus/internal/layertest"
	"horus/internal/message"
)

func TestOutOfOrderReassembly(t *testing.T) {
	h := layertest.New(t, nfrag.NewWith(nfrag.WithMaxFragment(64)))
	body := bytes.Repeat([]byte("0123456789"), 40)
	h.InjectDown(core.NewCast(message.New(body)))
	frags := h.DownOfType(core.DCast)
	if len(frags) < 6 {
		t.Fatalf("%d fragments, want >= 6", len(frags))
	}
	src := layertest.ID("p", 2)
	// Deliver in reverse order — NFRAG cannot assume FIFO below.
	for i := len(frags) - 1; i >= 0; i-- {
		h.InjectUp(&core.Event{Type: core.UCast, Msg: frags[i].Msg.Clone(), Source: src})
	}
	got := h.LastUp()
	if got == nil || !bytes.Equal(got.Msg.Body(), body) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestDuplicateFragmentsIgnored(t *testing.T) {
	h := layertest.New(t, nfrag.NewWith(nfrag.WithMaxFragment(64)))
	body := bytes.Repeat([]byte("z"), 150)
	h.InjectDown(core.NewCast(message.New(body)))
	frags := h.DownOfType(core.DCast)
	src := layertest.ID("p", 2)
	for _, f := range frags {
		h.InjectUp(&core.Event{Type: core.UCast, Msg: f.Msg.Clone(), Source: src})
		h.InjectUp(&core.Event{Type: core.UCast, Msg: f.Msg.Clone(), Source: src})
	}
	if got := h.UpOfType(core.UCast); len(got) != 1 {
		t.Fatalf("delivered %d messages under duplication, want 1", len(got))
	}
}

func TestIncompleteReassemblyTimesOut(t *testing.T) {
	h := layertest.New(t, nfrag.NewWith(
		nfrag.WithMaxFragment(64),
		nfrag.WithTimeout(100*time.Millisecond),
	))
	body := bytes.Repeat([]byte("q"), 200)
	h.InjectDown(core.NewCast(message.New(body)))
	frags := h.DownOfType(core.DCast)
	src := layertest.ID("p", 2)
	// Lose the last fragment.
	for _, f := range frags[:len(frags)-1] {
		h.InjectUp(&core.Event{Type: core.UCast, Msg: f.Msg.Clone(), Source: src})
	}
	h.Run(300 * time.Millisecond)
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatalf("incomplete message delivered: %v", got)
	}
	nf := h.G.Focus("NFRAG").(*nfrag.Nfrag)
	if nf.Stats().Abandoned != 1 {
		t.Errorf("Abandoned = %d, want 1", nf.Stats().Abandoned)
	}
	// The late fragment after abandonment must not resurrect it.
	h.InjectUp(&core.Event{Type: core.UCast, Msg: frags[len(frags)-1].Msg.Clone(), Source: src})
	if got := h.UpOfType(core.UCast); len(got) != 0 {
		t.Fatal("abandoned message resurrected by a late fragment")
	}
}

func TestDistinctMessagesDoNotMix(t *testing.T) {
	h := layertest.New(t, nfrag.NewWith(nfrag.WithMaxFragment(64)))
	h.InjectDown(core.NewCast(message.New(bytes.Repeat([]byte("A"), 150))))
	fa := h.DownOfType(core.DCast)
	h.Reset()
	h.InjectDown(core.NewCast(message.New(bytes.Repeat([]byte("B"), 150))))
	fb := h.DownOfType(core.DCast)
	h.Reset()
	src := layertest.ID("p", 2)
	// Interleave fragments of the two messages from the same source.
	for i := 0; i < len(fa) || i < len(fb); i++ {
		if i < len(fa) {
			h.InjectUp(&core.Event{Type: core.UCast, Msg: fa[i].Msg.Clone(), Source: src})
		}
		if i < len(fb) {
			h.InjectUp(&core.Event{Type: core.UCast, Msg: fb[i].Msg.Clone(), Source: src})
		}
	}
	ups := h.UpOfType(core.UCast)
	if len(ups) != 2 {
		t.Fatalf("delivered %d, want 2", len(ups))
	}
	for _, ev := range ups {
		b := ev.Msg.Body()
		for _, c := range b {
			if c != b[0] {
				t.Fatal("fragments of different messages mixed")
			}
		}
	}
}
