// Package nfrag implements the NFRAG layer: fragmentation over an
// *unreliable* transport (Table 3: requires only P1/P10/P11, provides
// P12).
//
// Unlike FRAG, which sits above FIFO channels and needs only the
// paper's one-bit more-flag, NFRAG cannot assume ordering or
// reliability. Each fragment carries {message id, index, count};
// receivers reassemble out-of-order fragments per (source, id) and
// abandon incomplete messages after a timeout. Delivery is
// all-or-nothing best effort: a lost fragment loses the whole message,
// which an upper retransmission layer (or the application) must
// tolerate.
package nfrag

import (
	"fmt"
	"time"

	"horus/internal/core"
	"horus/internal/message"
)

// DefaultMaxFragment is the default fragment payload size.
const DefaultMaxFragment = 1024

// defaultReassemblyTimeout abandons incomplete reassemblies.
const defaultReassemblyTimeout = time.Second

// Option configures the layer.
type Option func(*Nfrag)

// WithMaxFragment sets the fragment payload size.
func WithMaxFragment(n int) Option { return func(f *Nfrag) { f.max = n } }

// WithTimeout sets the reassembly abandonment timeout.
func WithTimeout(d time.Duration) Option { return func(f *Nfrag) { f.timeout = d } }

// New returns an NFRAG layer with defaults.
func New() core.Layer { return newNfrag() }

// NewWith returns a factory with options applied.
func NewWith(opts ...Option) core.Factory {
	return func() core.Layer {
		f := newNfrag()
		for _, o := range opts {
			o(f)
		}
		return f
	}
}

func newNfrag() *Nfrag {
	return &Nfrag{max: DefaultMaxFragment, timeout: defaultReassemblyTimeout}
}

type asmKey struct {
	src core.EndpointID
	id  uint64
}

type assembly struct {
	parts   map[uint32][]byte
	count   uint32
	started time.Duration
}

// Nfrag is one NFRAG layer instance.
type Nfrag struct {
	core.Base
	max     int
	timeout time.Duration
	nextID  uint64
	asm     map[asmKey]*assembly
	sweep   func()
	dead    bool
	stats   Stats
}

// Stats counts NFRAG activity.
type Stats struct {
	Fragmented  int
	Fragments   int
	Reassembled int
	Abandoned   int // incomplete reassemblies timed out
}

// Name implements core.Layer.
func (f *Nfrag) Name() string { return "NFRAG" }

// Stats returns a snapshot of the layer's counters.
func (f *Nfrag) Stats() Stats { return f.stats }

// Init implements core.Layer.
func (f *Nfrag) Init(c *core.Context) error {
	if err := f.Base.Init(c); err != nil {
		return err
	}
	if f.max < 16 {
		return fmt.Errorf("nfrag: maximum fragment size %d too small", f.max)
	}
	f.asm = make(map[asmKey]*assembly)
	if f.timeout > 0 {
		f.sweep = c.SetTimer(f.timeout, f.sweepTick)
	}
	return nil
}

// Down implements core.Layer.
func (f *Nfrag) Down(ev *core.Event) {
	switch ev.Type {
	case core.DCast, core.DSend:
		wire := ev.Msg.Marshal()
		f.nextID++
		count := (len(wire) + f.max - 1) / f.max
		if count == 0 {
			count = 1
		}
		if count > 1 {
			f.stats.Fragmented++
		}
		for i := 0; i < count; i++ {
			end := (i + 1) * f.max
			if end > len(wire) {
				end = len(wire)
			}
			m := message.New(wire[i*f.max : end])
			m.PushUint32(uint32(count))
			m.PushUint32(uint32(i))
			m.PushUint64(f.nextID)
			f.stats.Fragments++
			f.Ctx.Down(&core.Event{Type: ev.Type, Msg: m, Dests: ev.Dests})
		}
	case core.DDestroy:
		f.dead = true
		if f.sweep != nil {
			f.sweep()
		}
		f.Ctx.Down(ev)
	case core.DDump:
		ev.Dump = append(ev.Dump, fmt.Sprintf("NFRAG: max=%d frags=%d reasm=%d abandoned=%d",
			f.max, f.stats.Fragments, f.stats.Reassembled, f.stats.Abandoned))
		f.Ctx.Down(ev)
	default:
		f.Ctx.Down(ev)
	}
}

// Up implements core.Layer.
func (f *Nfrag) Up(ev *core.Event) {
	switch ev.Type {
	case core.UCast, core.USend:
		id := ev.Msg.PopUint64()
		idx := ev.Msg.PopUint32()
		count := ev.Msg.PopUint32()
		if count == 0 || idx >= count {
			return
		}
		key := asmKey{src: ev.Source, id: id}
		a := f.asm[key]
		if a == nil {
			a = &assembly{parts: make(map[uint32][]byte), count: count, started: f.Ctx.Now()}
			f.asm[key] = a
		}
		if a.count != count {
			return
		}
		if _, dup := a.parts[idx]; dup {
			return
		}
		a.parts[idx] = append([]byte(nil), ev.Msg.Body()...)
		if uint32(len(a.parts)) < a.count {
			return
		}
		delete(f.asm, key)
		var whole []byte
		for i := uint32(0); i < a.count; i++ {
			whole = append(whole, a.parts[i]...)
		}
		inner, err := message.Unmarshal(whole)
		if err != nil {
			return
		}
		if a.count > 1 {
			f.stats.Reassembled++
		}
		ev.Msg = inner
		f.Ctx.Up(ev)
	default:
		f.Ctx.Up(ev)
	}
}

// sweepTick abandons reassemblies older than the timeout.
func (f *Nfrag) sweepTick() {
	if f.dead {
		return
	}
	f.sweep = f.Ctx.SetTimer(f.timeout, f.sweepTick)
	now := f.Ctx.Now()
	for key, a := range f.asm {
		if now-a.started >= f.timeout {
			delete(f.asm, key)
			f.stats.Abandoned++
		}
	}
}
