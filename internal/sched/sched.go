//horus:wallclock — AwaitTimeout coordinates real OS threads (benchmarks,
// tests) and needs a genuine deadline; protocol time lives in netsim.

// Package sched implements the concurrency disciplines of paper §3.
//
// Horus threads "execute concurrently and pre-emptively, using mutual
// exclusion to protect critical regions", but locking proved to be a
// source of bugs in layers developed by inexperienced thread users, so
// the paper offers two simpler alternatives to raw critical sections —
// the monitor discipline and event counters — and reports ultimately
// moving to a non-threaded event-queue model (§3 end, §10 item 2),
// which is what the core package's per-endpoint executor implements.
// This package provides all three as reusable primitives; the
// BenchmarkThreadedVsEventQueue experiment compares them.
package sched

import (
	"sync"
	"time"
)

// Monitor treats a protected object as a monitor: only one goroutine
// at a time may be active inside it ("allowing only one thread at a
// time to be active for each group object"). The zero value is ready
// to use.
type Monitor struct {
	mu sync.Mutex
}

// Do runs fn exclusively.
func (m *Monitor) Do(fn func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fn() //horus:hcpi-ok — the monitor discipline IS fn-under-lock (§3)
}

// EventCounter is the paper's second discipline: a monotone counter
// that goroutines can advance and await. Combined with ticket
// assignment it orders threads "according to an integer sequencing
// value".
type EventCounter struct {
	mu    sync.Mutex
	cond  *sync.Cond
	value uint64
}

// NewEventCounter returns a counter at zero.
func NewEventCounter() *EventCounter {
	e := &EventCounter{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Read returns the current value.
func (e *EventCounter) Read() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Advance increments the counter and wakes waiters.
func (e *EventCounter) Advance() {
	e.mu.Lock()
	e.value++
	e.mu.Unlock()
	e.cond.Broadcast()
}

// Await blocks until the counter reaches at least v.
func (e *EventCounter) Await(v uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.value < v {
		e.cond.Wait()
	}
}

// AwaitTimeout blocks until the counter reaches at least v or the
// timeout elapses, reporting whether the value was reached. Wall-clock
// tests use it to bound how long a condition may take without turning
// a missed condition into a hung test.
func (e *EventCounter) AwaitTimeout(v uint64, d time.Duration) bool {
	deadline := time.Now().Add(d)
	// sync.Cond has no timed wait; a timer kicks the waiters loose at
	// the deadline. It takes the lock before broadcasting so the wakeup
	// cannot slip into the gap between a waiter's deadline check and
	// its cond.Wait.
	kick := time.AfterFunc(d, func() {
		e.mu.Lock()
		e.mu.Unlock() //nolint:staticcheck // empty section: lock is the fence
		e.cond.Broadcast()
	})
	defer kick.Stop()
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.value < v {
		if !time.Now().Before(deadline) {
			return false
		}
		e.cond.Wait()
	}
	return true
}

// Sequencer assigns each upcall a ticket and admits holders into a
// mutual-exclusion zone strictly in ticket order — the paper's
// event-counter discipline packaged for direct use.
type Sequencer struct {
	mu     sync.Mutex
	next   uint64 // next ticket to hand out
	serve  uint64 // ticket currently admitted
	waiter *sync.Cond
}

// NewSequencer returns a sequencer admitting ticket 0 first.
func NewSequencer() *Sequencer {
	s := &Sequencer{}
	s.waiter = sync.NewCond(&s.mu)
	return s
}

// Ticket draws the next sequencing value. Draw tickets in the order
// events arrive (e.g. inside the delivery goroutine) and run Enter
// from worker goroutines.
func (s *Sequencer) Ticket() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.next
	s.next++
	return t
}

// Enter blocks until every earlier ticket has left, runs fn, and
// admits the next ticket.
func (s *Sequencer) Enter(ticket uint64, fn func()) {
	s.mu.Lock()
	for s.serve != ticket {
		s.waiter.Wait()
	}
	s.mu.Unlock()

	fn()

	s.mu.Lock()
	s.serve++
	s.mu.Unlock()
	s.waiter.Broadcast()
}

// Queue is a standalone run-to-completion event queue: Post enqueues
// work, and a single logical scheduling thread drains it, so handlers
// never run concurrently — the paper's event-queue model. Unlike a
// dedicated worker goroutine, the draining is done by whichever poster
// finds the queue idle, so an idle Queue costs nothing.
type Queue struct {
	mu      sync.Mutex
	items   []func()
	running bool
	posted  uint64
	ran     uint64
}

// Post enqueues fn and drains the queue if no drain is active.
func (q *Queue) Post(fn func()) {
	q.mu.Lock()
	q.items = append(q.items, fn)
	q.posted++
	if q.running {
		q.mu.Unlock()
		return
	}
	q.running = true
	for len(q.items) > 0 {
		next := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()
		next()
		q.mu.Lock()
		q.ran++
	}
	q.running = false
	q.mu.Unlock()
}

// Stats returns how many events were posted and completed.
func (q *Queue) Stats() (posted, ran uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.posted, q.ran
}
