package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMonitorMutualExclusion(t *testing.T) {
	var m Monitor
	var active, maxActive int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Do(func() {
					n := atomic.AddInt32(&active, 1)
					if n > atomic.LoadInt32(&maxActive) {
						atomic.StoreInt32(&maxActive, n)
					}
					atomic.AddInt32(&active, -1)
				})
			}
		}()
	}
	wg.Wait()
	if maxActive != 1 {
		t.Errorf("max concurrent holders = %d, want 1", maxActive)
	}
}

func TestEventCounterAwait(t *testing.T) {
	e := NewEventCounter()
	done := make(chan struct{})
	go func() {
		e.Await(10)
		close(done)
	}()
	for i := 0; i < 10; i++ {
		select {
		case <-done:
			t.Fatalf("Await(10) returned after %d advances", i)
		default:
		}
		e.Advance()
	}
	<-done
	if got := e.Read(); got != 10 {
		t.Errorf("Read = %d, want 10", got)
	}
}

func TestEventCounterAwaitTimeout(t *testing.T) {
	e := NewEventCounter()

	// Already satisfied: returns true immediately.
	if !e.AwaitTimeout(0, time.Millisecond) {
		t.Error("AwaitTimeout(0) = false, want true")
	}

	// Never satisfied: returns false after the deadline instead of
	// hanging.
	start := time.Now()
	if e.AwaitTimeout(1, 20*time.Millisecond) {
		t.Error("AwaitTimeout on a stuck counter = true, want false")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("AwaitTimeout returned before its deadline")
	}

	// Satisfied mid-wait: returns true promptly.
	done := make(chan bool, 1)
	go func() { done <- e.AwaitTimeout(3, 5*time.Second) }()
	for i := 0; i < 3; i++ {
		e.Advance()
	}
	select {
	case ok := <-done:
		if !ok {
			t.Error("AwaitTimeout = false after the counter advanced")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AwaitTimeout did not wake on Advance")
	}
}

func TestSequencerOrdersEntry(t *testing.T) {
	s := NewSequencer()
	const n = 50
	tickets := make([]uint64, n)
	for i := range tickets {
		tickets[i] = s.Ticket()
	}
	var mu sync.Mutex
	var order []uint64
	var wg sync.WaitGroup
	// Launch in reverse so the scheduler cannot accidentally get the
	// order right.
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(ticket uint64) {
			defer wg.Done()
			s.Enter(ticket, func() {
				mu.Lock()
				order = append(order, ticket)
				mu.Unlock()
			})
		}(tickets[i])
	}
	wg.Wait()
	for i, got := range order {
		if got != uint64(i) {
			t.Fatalf("entry %d had ticket %d; order %v", i, got, order)
		}
	}
}

func TestQueueRunToCompletion(t *testing.T) {
	var q Queue
	var active, maxActive int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				q.Post(func() {
					n := atomic.AddInt32(&active, 1)
					if n > atomic.LoadInt32(&maxActive) {
						atomic.StoreInt32(&maxActive, n)
					}
					atomic.AddInt32(&active, -1)
				})
			}
		}()
	}
	wg.Wait()
	if maxActive != 1 {
		t.Errorf("max concurrent handlers = %d, want 1", maxActive)
	}
	posted, _ := q.Stats()
	if posted != 16*200 {
		t.Errorf("posted = %d, want %d", posted, 16*200)
	}
}

func TestQueueReentrantPost(t *testing.T) {
	var q Queue
	var order []int
	q.Post(func() {
		order = append(order, 1)
		q.Post(func() { order = append(order, 3) })
		order = append(order, 2)
	})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3] (nested post must not recurse)", order)
	}
}
