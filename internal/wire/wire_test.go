package wire_test

import (
	"testing"
	"testing/quick"

	"horus/internal/core"
	"horus/internal/message"
	"horus/internal/wire"
)

func TestEndpointIDRoundTrip(t *testing.T) {
	m := message.New(nil)
	id := core.EndpointID{Site: "host-7", Birth: 42}
	wire.PushEndpointID(m, id)
	if got := wire.PopEndpointID(m); got != id {
		t.Fatalf("got %v, want %v", got, id)
	}
}

func TestIDListRoundTrip(t *testing.T) {
	ids := []core.EndpointID{
		{Site: "a", Birth: 1},
		{Site: "b", Birth: 2},
		{Site: "c", Birth: 3},
	}
	m := message.New(nil)
	wire.PushIDList(m, ids)
	got := wire.PopIDList(m)
	if len(got) != len(ids) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("element %d: %v != %v (order must be preserved)", i, got[i], ids[i])
		}
	}
}

func TestEmptyIDList(t *testing.T) {
	m := message.New(nil)
	wire.PushIDList(m, nil)
	if got := wire.PopIDList(m); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestViewRoundTrip(t *testing.T) {
	a := core.EndpointID{Site: "a", Birth: 1}
	b := core.EndpointID{Site: "b", Birth: 2}
	v := core.NewView(core.ViewID{Seq: 9, Coord: a}, "grp", []core.EndpointID{a, b})
	m := message.New(nil)
	wire.PushView(m, v)
	got := wire.PopView(m)
	if got.ID != v.ID || got.Group != v.Group || got.Size() != 2 {
		t.Fatalf("got %v, want %v", got, v)
	}
	for i := range v.Members {
		if got.Members[i] != v.Members[i] {
			t.Fatalf("member %d mismatch", i)
		}
	}
}

func TestQuickCountsRoundTrip(t *testing.T) {
	f := func(counts []uint64) bool {
		m := message.New(nil)
		wire.PushCounts(m, counts)
		got := wire.PopCounts(m)
		if len(got) != len(counts) {
			return false
		}
		for i := range counts {
			if got[i] != counts[i] {
				return false
			}
		}
		return m.HeaderLen() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIDRoundTrip(t *testing.T) {
	f := func(site string, birth uint64) bool {
		m := message.New(nil)
		id := core.EndpointID{Site: site, Birth: birth}
		wire.PushEndpointID(m, id)
		return wire.PopEndpointID(m) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStackedEncodingsPopInReverse(t *testing.T) {
	// Layers push multiple structures; they must pop cleanly in
	// reverse, leaving lower layers' headers untouched.
	m := message.New([]byte("body"))
	m.PushUint32(0xDEAD) // a lower layer's header
	a := core.EndpointID{Site: "a", Birth: 1}
	wire.PushIDList(m, []core.EndpointID{a})
	wire.PushViewID(m, core.ViewID{Seq: 3, Coord: a})
	if got := wire.PopViewID(m); got.Seq != 3 {
		t.Fatal("view id mismatch")
	}
	if got := wire.PopIDList(m); len(got) != 1 || got[0] != a {
		t.Fatal("id list mismatch")
	}
	if got := m.PopUint32(); got != 0xDEAD {
		t.Fatal("lower header disturbed")
	}
}
