// Package wire provides header encodings shared by protocol layers:
// endpoint identifiers, identifier lists, views, and count vectors.
// Each Push function has a matching Pop; layers compose them LIFO on
// the message header stack.
package wire

import (
	"horus/internal/core"
	"horus/internal/message"
)

// PushEndpointID pushes id onto m's header stack.
func PushEndpointID(m *message.Message, id core.EndpointID) {
	m.PushString(id.Site)
	m.PushUint64(id.Birth)
}

// PopEndpointID pops an identifier pushed by PushEndpointID.
func PopEndpointID(m *message.Message) core.EndpointID {
	birth := m.PopUint64()
	site := m.PopString()
	return core.EndpointID{Site: site, Birth: birth}
}

// PushIDList pushes a list of endpoint identifiers.
func PushIDList(m *message.Message, ids []core.EndpointID) {
	for i := len(ids) - 1; i >= 0; i-- {
		PushEndpointID(m, ids[i])
	}
	m.PushUint32(uint32(len(ids)))
}

// PopIDList pops a list pushed by PushIDList.
func PopIDList(m *message.Message) []core.EndpointID {
	n := int(m.PopUint32())
	ids := make([]core.EndpointID, n)
	for i := 0; i < n; i++ {
		ids[i] = PopEndpointID(m)
	}
	return ids
}

// PushViewID pushes a view identifier.
func PushViewID(m *message.Message, id core.ViewID) {
	PushEndpointID(m, id.Coord)
	m.PushUint64(id.Seq)
}

// PopViewID pops a view identifier pushed by PushViewID.
func PopViewID(m *message.Message) core.ViewID {
	seq := m.PopUint64()
	coord := PopEndpointID(m)
	return core.ViewID{Seq: seq, Coord: coord}
}

// PushView pushes a complete view (identifier, group, members).
func PushView(m *message.Message, v *core.View) {
	PushIDList(m, v.Members)
	m.PushString(string(v.Group))
	PushViewID(m, v.ID)
}

// PopView pops a view pushed by PushView.
func PopView(m *message.Message) *core.View {
	id := PopViewID(m)
	group := core.GroupAddr(m.PopString())
	members := PopIDList(m)
	return &core.View{ID: id, Group: group, Members: members}
}

// PushCounts pushes a vector of counters.
func PushCounts(m *message.Message, counts []uint64) {
	for i := len(counts) - 1; i >= 0; i-- {
		m.PushUint64(counts[i])
	}
	m.PushUint32(uint32(len(counts)))
}

// PopCounts pops a vector pushed by PushCounts.
func PopCounts(m *message.Message) []uint64 {
	n := int(m.PopUint32())
	counts := make([]uint64, n)
	for i := 0; i < n; i++ {
		counts[i] = m.PopUint64()
	}
	return counts
}
